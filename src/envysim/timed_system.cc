#include "envysim/timed_system.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"
#include "sim/stats.hh"

namespace envy {

namespace {

/** Times charged per device operation, derived from FlashTiming. */
struct OpTimes
{
    Tick program;
    Tick copy;  //!< cleaner page copy: wide read + program
    Tick erase;
};

/** Split a busy interval into flush/clean/erase buckets by counter
 *  deltas (wear-related slowdown is folded into the flush share). */
struct WorkCounters
{
    std::uint64_t flushes;
    std::uint64_t cleanPrograms;
    std::uint64_t erases;

    static WorkCounters
    of(EnvyStore &store)
    {
        return {store.writeBuffer().statFlushes.value(),
                store.cleanerRef().statCleanerPrograms.value(),
                store.flash().statSegmentErases.value()};
    }
};

} // namespace

double
TimedResult::lifetimeDays(const Geometry &geom,
                          std::uint64_t rated_cycles) const
{
    if (flushPagesPerSec <= 0.0)
        return 0.0;
    // Paper §5.5: lifetime = write capacity / page write rate, where
    // write capacity is physical pages times rated cycles and the
    // write rate counts the flush itself plus cleaning overhead.
    const double capacity = asDouble(geom.physicalPages()) *
                            static_cast<double>(rated_cycles);
    const double rate = flushPagesPerSec * (1.0 + cleaningCost);
    return capacity / rate / 86400.0;
}

TimedResult
runTimedSim(const TimedParams &params)
{
    EnvyConfig cfg = params.envy;
    cfg.autoDrain = false; // the timeline drives flushing
    EnvyStore store(cfg);
    TpcaWorkload tpca(params.tpca, params.seed ^ 0x5EEDull);
    Controller &ctl = store.controller();

    ENVY_ASSERT(tpca.footprintBytes() <= store.size(),
                "TPC-A database does not fit the store");

    const FlashTiming &ft = cfg.timing;
    const OpTimes op{ft.programTime, ft.readTime + ft.programTime,
                     ft.eraseTime};
    const std::uint32_t par = std::max<std::uint32_t>(
        params.parallelOps, 1);

    // ---- timeline state ----------------------------------------
    Tick free_at = 0;       // frontier of scheduled controller work
    Tick bg_debt = 0;       // busy time of applied-but-unpaid bg work
    Tick bg_blocked_until = 0;
    Tick now = 0;           // arrival clock

    // Window accumulators.
    const Tick warmup_end =
        static_cast<Tick>(params.warmupSeconds * 1e9);
    const Tick measure_end =
        warmup_end + static_cast<Tick>(params.measureSeconds * 1e9);
    bool in_window = false;
    Tick window_start = 0;

    double read_lat_sum = 0.0, write_lat_sum = 0.0;
    std::uint64_t read_count = 0, write_count = 0;
    StatGroup tstats("timed");
    Histogram write_hist(&tstats, "writeLat",
                         "write latency histogram");
    Tick host_busy = 0, flush_busy = 0, clean_busy = 0, erase_busy = 0;
    std::uint64_t completed = 0, stalls = 0;
    WorkCounters win0{};
    obs::MetricsSnapshot warmup_snap;

    auto chargeBackground = [&](const WorkCounters &before,
                                const WorkCounters &after) {
        const Tick f = (after.flushes - before.flushes) * op.program;
        const Tick c =
            (after.cleanPrograms - before.cleanPrograms) * op.copy;
        const Tick e = (after.erases - before.erases) * op.erase;
        if (in_window) {
            flush_busy += f / par;
            clean_busy += c / par;
            erase_busy += e / par;
        }
        return (f + c + e) / par;
    };

    // Run background work into the gap [free_at, until).
    auto advanceTo = [&](Tick until) {
        while (free_at < until) {
            if (bg_debt > 0) {
                const Tick pay = std::min<Tick>(bg_debt,
                                                until - free_at);
                bg_debt -= pay;
                free_at += pay;
                continue;
            }
            if (ctl.needsBackgroundFlush()) {
                if (free_at < bg_blocked_until) {
                    // Resume backoff (§3.4): sit out the quiet-down
                    // period, then work if the gap is still open.
                    free_at = std::min(bg_blocked_until, until);
                    continue;
                }
                const WorkCounters before = WorkCounters::of(store);
                ctl.flushOne();
                const WorkCounters after = WorkCounters::of(store);
                bg_debt += chargeBackground(before, after);
                continue;
            }
            free_at = until; // idle
        }
    };

    std::vector<StorageAccess> txn;
    Rng arrivals(params.seed);

    while (now < measure_end) {
        now += tpca.nextInterarrival(params.requestRate);
        tpca.nextTransaction(txn);

        if (!in_window && now >= warmup_end) {
            in_window = true;
            // Charged work begins at the service frontier, which can
            // already be past the arrival under overload.
            window_start = std::max(now, free_at);
            win0 = WorkCounters::of(store);
            warmup_snap = store.metrics().snapshot();
        }

        advanceTo(now);
        // Service start: queued behind earlier transactions if the
        // frontier is past the arrival.
        Tick t = std::max(free_at, now);
        // A long operation in progress is suspended.
        bool suspended = bg_debt > 0 && free_at <= now;

        const Tick host0 = t;
        Tick stall_busy = 0; // device time paid inline by stalls
        for (const StorageAccess &a : txn) {
            Tick lat = params.hostAccessTime;
            if (suspended) {
                lat += params.suspendPenalty;
                suspended = false;
            }
            if (a.isWrite) {
                const WorkCounters before = WorkCounters::of(store);
                const std::uint64_t misses0 =
                    store.controller().mmu().statMisses.value();
                std::uint8_t word[8] = {};
                const Controller::AccessOutcome out = ctl.write(
                    a.addr, std::span<const std::uint8_t>(
                                word, a.bytes));
                if (store.controller().mmu().statMisses.value() !=
                    misses0)
                    lat += params.tlbMissPenalty;
                if (out.cow)
                    lat += params.cowTransferTime;
                if (out.foregroundFlushes) {
                    // The stall pays for flush/clean/erase inline.
                    const WorkCounters after =
                        WorkCounters::of(store);
                    const Tick busy =
                        chargeBackground(before, after);
                    lat += busy;
                    stall_busy += busy;
                    if (in_window)
                        stalls += out.foregroundFlushes;
                }
                t += lat;
                if (in_window) {
                    write_lat_sum += static_cast<double>(lat);
                    ++write_count;
                    write_hist.sample(lat);
                }
            } else {
                if (ctl.probeRead(a.addr))
                    lat += params.tlbMissPenalty;
                t += lat;
                if (in_window) {
                    read_lat_sum += static_cast<double>(lat);
                    ++read_count;
                }
            }
        }
        // Host busy time follows the same charging window as the
        // device buckets (net of the stall-paid device work, which
        // lands in flush/clean/erase).
        if (in_window)
            host_busy += (t - host0) - stall_busy;
        // Completions count by *completion* time — under overload a
        // transaction arriving in the warmup may finish inside the
        // window and vice versa.
        if (t > warmup_end && t <= measure_end)
            ++completed;
        free_at = std::max(free_at, t);
        bg_blocked_until = free_at + params.resumeBackoff;
    }

    // Let the frontier reach the end of the window.
    advanceTo(measure_end);

    TimedResult r;
    r.requestedTps = params.requestRate;
    r.transactions = completed;
    // Throughput over the wall-clock window; busy fractions over the
    // controller timeline that the charged work actually occupied
    // (under overload service runs past the window's end).
    const double window_s =
        ticksToSeconds(measure_end - warmup_end);
    const Tick charge_end = std::max(free_at, measure_end);
    const double charged_s =
        window_start < charge_end
            ? ticksToSeconds(charge_end - window_start)
            : window_s;
    r.completedTps = static_cast<double>(completed) / window_s;
    r.readLatencyNs =
        read_count
            ? read_lat_sum / static_cast<double>(read_count)
            : 0.0;
    r.writeLatencyNs =
        write_count
            ? write_lat_sum / static_cast<double>(write_count)
            : 0.0;
    r.writeLatencyP99Ns = static_cast<double>(write_hist.percentile(99));

    const WorkCounters win1 = WorkCounters::of(store);
    const double charged_ns = charged_s * 1e9;
    r.fracRead = static_cast<double>(host_busy) / charged_ns;
    r.fracFlush = static_cast<double>(flush_busy) / charged_ns;
    r.fracClean = static_cast<double>(clean_busy) / charged_ns;
    r.fracErase = static_cast<double>(erase_busy) / charged_ns;
    r.fracIdle = std::max(
        0.0, 1.0 - r.fracRead - r.fracFlush - r.fracClean -
                 r.fracErase);

    const std::uint64_t flushes = win1.flushes - win0.flushes;
    r.flushPagesPerSec = static_cast<double>(flushes) / window_s;
    r.cleaningCost =
        flushes ? static_cast<double>(win1.cleanPrograms -
                                      win0.cleanPrograms) /
                      static_cast<double>(flushes)
                : 0.0;
    r.cleans = store.cleanerRef().statCleans.value();
    r.foregroundStalls = stalls;
    r.warmupMetrics = std::move(warmup_snap);
    r.finalMetrics = store.metrics().snapshot();
    return r;
}

} // namespace envy
