/**
 * @file
 * Event-driven model of §6's concurrent bank operations.
 *
 * The base eNVy controller issues one flash operation at a time; the
 * §6 extension lets the cleaning processor keep several program (and
 * erase) operations in flight in *different banks*, since a program
 * only occupies the bus for its one-cycle data transfer and then
 * runs inside the chips.  The paper: "with the cleaner executing 4
 * to 8 concurrent programming operations, the average time to flush
 * a page can drop from 4us to less than 1us."
 *
 * This model plays a batch of page flushes against B banks with an
 * issue depth of K: each operation holds the shared bus for the
 * transfer cycle, then its target bank for the program time; a bank
 * can only run one operation at once.  The figure of merit is the
 * makespan divided by the page count — the effective per-page flush
 * time the §6 text quotes.
 */

#ifndef ENVY_ENVYSIM_BANK_MODEL_HH
#define ENVY_ENVYSIM_BANK_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "flash/flash_timing.hh"

namespace envy {

struct BankModelParams
{
    std::uint32_t numBanks = 8;
    std::uint32_t issueDepth = 1; //!< concurrent operations allowed
    std::uint64_t pages = 4096;   //!< flush batch size
    Tick busTransfer = 100;       //!< wide-path cycle per page
    Tick programTime = microseconds(4);
    std::uint64_t seed = 1;       //!< bank assignment shuffle
    /** Erases interleaved into the stream (one per this many pages;
     *  0 = none). */
    std::uint64_t eraseEvery = 0;
    Tick eraseTime = milliseconds(50);
};

struct BankModelResult
{
    Tick makespan = 0;
    /** makespan / pages: the §6 "average time to flush a page". */
    double effectivePageTimeNs = 0.0;
    double busUtilization = 0.0;
    double avgBankUtilization = 0.0;
};

BankModelResult runBankModel(const BankModelParams &params);

} // namespace envy

#endif // ENVY_ENVYSIM_BANK_MODEL_HH
