/**
 * @file
 * Systematic crash-point exploration.
 *
 * The paper's durability argument (§3.2–§3.4) is that the
 * battery-backed page table makes eNVy safe against power failure at
 * *any* instant.  The CrashPointExplorer tests that claim the hard
 * way: it runs a deterministic workload once to learn how often each
 * registered crash point fires (the probe), then re-runs it from
 * scratch once per scheduled (point, occurrence) pair with a
 * FaultInjector primed to throw PowerLoss exactly there.  After each
 * simulated power loss it runs Recovery::run and verifies:
 *
 *  - every structural invariant of the store (InvariantChecker);
 *  - every logical page's contents against a reference model — pages
 *    touched by the interrupted operation may hold either their
 *    pre- or post-image (the commit point had or had not been
 *    reached), all others must match exactly;
 *  - that the store still works: an "aftershock" workload runs on the
 *    recovered store and is verified exactly.
 *
 * Exploration is exhaustive (every occurrence of every point) by
 * default; maxCasesPerPoint switches to seeded-random sampling of
 * occurrences (always keeping the first and the last).  Everything —
 * workload, device faults, sampling — derives from one RNG seed, so
 * a failing case reproduces from the config alone.
 */

#ifndef ENVY_ENVYSIM_CRASH_EXPLORER_HH
#define ENVY_ENVYSIM_CRASH_EXPLORER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "envy/envy_store.hh"
#include "faults/fault_injector.hh"
#include "faults/invariant_checker.hh"
#include "obs/metrics.hh"

namespace envy {

struct CrashExplorerConfig
{
    std::uint64_t seed = 1;

    /**
     * Worker threads for the case fan-out (0 picks
     * ParallelRunner::defaultJobs()).  Every case builds its own
     * store/driver/injector and the crash-point sink is thread-local,
     * so cases are independent; results are reported in schedule
     * order, making the outcome identical at any job count.  The
     * probe run stays serial.
     */
    unsigned jobs = 1;

    /** Store under test; defaults to churnStore(). */
    EnvyConfig store;

    enum class Workload
    {
        Churn, //!< random writes + shadow transactions
        Tpca,  //!< atomic TPC-A debit/credit transactions
    };
    Workload workload = Workload::Churn;

    std::uint64_t opsPerCase = 300;
    std::uint64_t aftershockOps = 48;

    /** Occurrences tested per point; 0 = exhaustive. */
    std::uint64_t maxCasesPerPoint = 0;

    /** Standing device-fault rates, active in every run. */
    double programFailureRate = 0.0;
    double eraseFailureRate = 0.0;

    /**
     * Program / erase attempts (1-based global ordinals) that
     * spec-fail in every run.  Ordinals keep the retirement count
     * per run small and deterministic, where a rate would compound
     * across thousands of operations and could retire enough slots
     * to overflow a cleaning destination.
     */
    std::vector<std::uint64_t> failProgramOps;
    std::vector<std::uint64_t> failEraseOps;

    // Churn workload shape.
    double txnChance = 0.25;  //!< ops that run inside a transaction
    double abortChance = 0.4; //!< of those, share that aborts

    // TPC-A workload shape.
    std::uint64_t tpcaAccounts = 200;

    CrashExplorerConfig() { store = churnStore(); }

    /** Small, high-churn store: cleans and rotations come quickly. */
    static EnvyConfig churnStore();
    /** Slightly roomier store that fits the small TPC-A database. */
    static EnvyConfig tpcaStore();
};

struct CrashCaseResult
{
    std::string point;
    std::uint64_t occurrence = 0;
    bool crashed = false; //!< the planned PowerLoss fired
    RecoveryReport recovery;
    std::vector<std::string> violations;

    /**
     * The store's metrics after recovery + aftershock.  runCase
     * cross-checks the recovery.* counters in here against the
     * RecoveryReport and the fault.* counters against the injector —
     * a disagreement is a violation like any other.
     */
    obs::MetricsSnapshot metricsAfter;

    bool ok() const { return violations.empty(); }
};

struct CrashExplorerResult
{
    /** Crash-point hit counts observed by the probe run. */
    std::map<std::string, std::uint64_t> probeHits;
    /** Registered points the workload never reached. */
    std::vector<std::string> pointsNeverHit;
    std::vector<CrashCaseResult> cases;
    std::uint64_t failures = 0;

    bool allPassed() const { return failures == 0; }
    /** First failing case's description, for test messages. */
    std::string firstFailure() const;
};

class CrashPointExplorer
{
  public:
    explicit CrashPointExplorer(CrashExplorerConfig cfg);

    CrashExplorerResult run();

    /** One case: crash at the given occurrence of a point, recover,
     *  verify.  Exposed for targeted tests and the benchmark. */
    CrashCaseResult runCase(const std::string &point,
                            std::uint64_t occurrence);

  private:
    CrashExplorerConfig cfg_;
};

} // namespace envy

#endif // ENVY_ENVYSIM_CRASH_EXPLORER_HH
