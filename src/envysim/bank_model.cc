#include "envysim/bank_model.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace envy {

BankModelResult
runBankModel(const BankModelParams &params)
{
    ENVY_ASSERT(params.numBanks > 0 && params.issueDepth > 0 &&
                    params.pages > 0,
                "degenerate bank model");

    // Work items: page programs round-robin over banks (a cleaner
    // draining a buffer naturally stripes them), with optional
    // erases mixed in.
    struct Op
    {
        std::uint32_t bank;
        Tick busy;
    };
    std::vector<Op> ops;
    ops.reserve(params.pages);
    for (std::uint64_t i = 0; i < params.pages; ++i) {
        const auto bank =
            static_cast<std::uint32_t>(i % params.numBanks);
        ops.push_back({bank, params.programTime});
        if (params.eraseEvery && (i + 1) % params.eraseEvery == 0) {
            // Cleans rotate across the array, so consecutive erases
            // land in different banks.
            const auto erase_bank = static_cast<std::uint32_t>(
                ((i + 1) / params.eraseEvery) % params.numBanks);
            ops.push_back({erase_bank, params.eraseTime});
        }
    }

    EventQueue events;
    std::vector<Tick> bank_free(params.numBanks, 0);
    std::vector<Tick> bank_busy(params.numBanks, 0);
    Tick bus_free = 0;
    Tick bus_busy = 0;
    Tick makespan = 0;
    std::size_t next = 0;
    std::uint32_t in_flight = 0;

    // §6: "The order in which pages are flushed from the write
    // buffer does not affect correctness so it is easy to select
    // pages that can be written in parallel."  Issue looks a bounded
    // window ahead and picks the operation whose bank frees soonest;
    // strict order would let one 50 ms erase head-of-line block
    // every flush bound for its bank.
    constexpr std::size_t lookahead = 64;
    auto pickNext = [&]() {
        const std::size_t limit =
            std::min(ops.size(), next + lookahead);
        std::size_t best = next;
        Tick best_start = ~Tick(0);
        for (std::size_t i = next; i < limit; ++i) {
            const Tick start = bank_free[ops[i].bank];
            if (start < best_start) {
                best_start = start;
                best = i;
            }
        }
        std::swap(ops[next], ops[best]);
        return ops[next++];
    };

    // Issue the next operation if the depth window allows: take the
    // bus for one transfer cycle, then occupy the target bank.
    std::function<void()> issue = [&]() {
        while (in_flight < params.issueDepth && next < ops.size()) {
            const Op op = pickNext();
            ++in_flight;
            const Tick bus_at = std::max(events.now(), bus_free);
            bus_free = bus_at + params.busTransfer;
            bus_busy += params.busTransfer;
            const Tick start =
                std::max(bus_free, bank_free[op.bank]);
            const Tick done = start + op.busy;
            bank_free[op.bank] = done;
            bank_busy[op.bank] += op.busy;
            events.schedule(done, [&, done] {
                --in_flight;
                makespan = std::max(makespan, done);
                issue();
            });
        }
    };

    events.schedule(0, issue);
    events.runAll();

    BankModelResult r;
    r.makespan = makespan;
    r.effectivePageTimeNs =
        static_cast<double>(makespan) /
        static_cast<double>(params.pages);
    r.busUtilization = makespan
                           ? static_cast<double>(bus_busy) /
                                 static_cast<double>(makespan)
                           : 0.0;
    double busy_sum = 0;
    for (const Tick b : bank_busy)
        busy_sum += static_cast<double>(b);
    r.avgBankUtilization =
        makespan ? busy_sum / (static_cast<double>(makespan) *
                               params.numBanks)
                 : 0.0;
    return r;
}

} // namespace envy
