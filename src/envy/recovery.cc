#include "envy/recovery.hh"

#include <utility>
#include <vector>

#include "common/logging.hh"
#include "envy/envy_store.hh"
#include "obs/trace.hh"

namespace envy {

RecoveryReport
Recovery::run(EnvyStore &store)
{
    RecoveryReport report;
    SramArray &sram = *store.sram_;
    FlashArray &flash = *store.flash_;
    PageTable &pt = *store.pageTable_;
    WriteBuffer &buffer = *store.buffer_;
    SegmentSpace &space = *store.space_;
    Mmu &mmu = *store.mmu_;
    Cleaner &cleaner = *store.cleaner_;
    WearLeveler &wear = *store.wearLeveler_;

    // 1. Power failure: battery-backed SRAM survives; all in-core
    // caches are now suspect.
    sram.powerFail();
    mmu.flushTlb();
    space.recover();
    buffer.recover();

    // 2. Sweep transaction shadows (§6).  The ShadowManager's
    // shadow-to-transaction bookkeeping is volatile, so every pinned
    // shadow is now an orphan; the committed state of each page is
    // whatever the page table points at.  Sweeping first also means
    // the resumed clean/rotation below never relocates a shadow
    // nobody is tracking.  Untouched segments (nothing ever written)
    // are skipped outright so a paper-scale sweep visits only the
    // segments that hold state; the work lists are hoisted out of the
    // loops so the sweep does not allocate per segment.
    std::vector<SlotId> shadows;
    std::vector<FlashPageAddr> stale;
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s) {
        const SegmentId seg{s};
        if (flash.usedSlots(seg) == PageCount(0))
            continue;
        shadows.clear();
        flash.forEachShadow(seg, [&](SlotId slot) {
            shadows.push_back(slot);
        });
        for (const SlotId slot : shadows)
            flash.invalidatePage({seg, slot});
        report.shadowsSwept += shadows.size();
    }

    // 3. Reclaim stale flash duplicates: a slot owned by logical page
    // L is live only if the page table still points at it (the table
    // swing is the commit point).
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s) {
        const SegmentId seg{s};
        if (flash.usedSlots(seg) == PageCount(0))
            continue;
        stale.clear();
        flash.forEachLive(seg, [&](SlotId slot,
                                   LogicalPageId logical) {
            const PageTable::Location loc = pt.lookup(logical);
            const FlashPageAddr here{seg, slot};
            if (loc.kind != PageTable::LocKind::Flash ||
                !(loc.flash == here)) {
                stale.push_back(here);
            }
        });
        for (const FlashPageAddr &addr : stale)
            flash.invalidatePage(addr);
        report.staleFlashReclaimed += stale.size();
    }

    // 4. Rebuild the write buffer, dropping orphan slots (a push whose
    // page-table swing never happened).  Surviving entries keep their
    // FIFO order; the page table is rewritten to the new slot indices.
    struct Entry
    {
        LogicalPageId logical;
        std::uint64_t origin;
        std::vector<std::uint8_t> data;
    };
    std::vector<Entry> entries;
    const std::uint32_t cap = buffer.capacity();
    const std::uint32_t count = buffer.size();
    const bool data_mode = flash.storesData();
    const std::uint32_t tail_slot =
        count ? buffer.tail().slot.value() : 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        // Oldest first: the slot layout is a ring.
        const BufferSlotId slot((tail_slot + i) % cap);
        const LogicalPageId owner = buffer.slotOwner(slot);
        if (!owner.valid()) {
            ++report.bufferOrphansDropped;
            continue; // hole left by a partial push
        }
        const PageTable::Location loc = pt.lookup(owner);
        if (loc.kind != PageTable::LocKind::Sram ||
            loc.sramSlot != slot) {
            ++report.bufferOrphansDropped;
            continue; // orphan: table never swung to this slot
        }
        Entry e;
        e.logical = owner;
        e.origin = buffer.slotOrigin(slot);
        if (data_mode) {
            auto src = std::as_const(buffer).slotData(slot);
            e.data.assign(src.begin(), src.end());
        }
        entries.push_back(std::move(e));
    }
    buffer.reset();
    for (const Entry &e : entries) {
        const BufferSlotId slot = buffer.push(e.logical, e.origin);
        if (data_mode) {
            auto dst = buffer.slotData(slot);
            std::copy(e.data.begin(), e.data.end(), dst.begin());
        }
        mmu.mapToSram(e.logical, slot);
    }
    report.bufferEntriesKept = entries.size();

    // 5. Finish an interrupted wear-leveling rotation.  Mutually
    // exclusive with an interrupted clean: a rotation only starts
    // after the clean's record is cleared.
    report.wearResumed = wear.resumeRotation(space, cleaner);

    // 6. Finish an interrupted clean.
    const SegmentSpace::CleanRecord rec = space.cleanRecord();
    if (rec.inProgress) {
        if (space.physOf(rec.logical) == rec.destPhys) {
            // The crash fell between commitClean and the record
            // clear: the segment map already names the destination,
            // the old victim is erased and is the reserve.
            ENVY_ASSERT(space.reserve() == rec.victimPhys,
                        "recovery: committed clean record does not match "
                        "the reserve");
            space.clearCleanRecord();
            report.cleanRecordOnlyCleared = true;
        } else {
            ENVY_ASSERT(
                space.physOf(rec.logical) == rec.victimPhys,
                "recovery: clean record does not match the segment map");
            ENVY_ASSERT(space.reserve() == rec.destPhys,
                        "recovery: clean record does not match the reserve");
            ENVY_INFORM("recovery: resuming clean of logical segment ",
                        rec.logical);
            cleaner.resume(rec.logical);
            report.cleanResumed = true;
        }
    }

    // 7. Reset policy heuristics against the recovered reality.
    store.controller_->policy().attach(space, cleaner);

    // 8. Publish the repair work.  Registration is idempotent, so
    // re-running recovery after every crash of an exploration run
    // keeps appending to the same counters (tests/test_crash_explorer
    // checks they stay consistent with the returned reports).
    obs::MetricsRegistry &metrics = store.metrics();
    metrics
        .counter("recovery.runs", "runs",
                 "power-fail recovery passes completed")
        .add();
    metrics
        .counter("recovery.stale_reclaimed", "pages",
                 "stale flash duplicates re-invalidated by recovery")
        .add(report.staleFlashReclaimed);
    metrics
        .counter("recovery.shadows_swept", "pages",
                 "transaction shadows reclaimed by recovery")
        .add(report.shadowsSwept);
    metrics
        .counter("recovery.buffer_kept", "pages",
                 "write-buffer pages that survived recovery")
        .add(report.bufferEntriesKept);
    metrics
        .counter("recovery.orphans_dropped", "pages",
                 "orphan buffer slots dropped by recovery")
        .add(report.bufferOrphansDropped);
    metrics
        .counter("recovery.pages_repaired", "pages",
                 "total slots recovery had to repair (stale + "
                 "shadows + orphans)")
        .add(report.staleFlashReclaimed + report.shadowsSwept +
             report.bufferOrphansDropped);
    metrics
        .counter("recovery.cleans_resumed", "cleans",
                 "interrupted cleans driven to completion")
        .add(report.cleanResumed ? 1 : 0);
    metrics
        .counter("recovery.wear_resumed", "rotations",
                 "interrupted wear rotations driven to completion")
        .add(report.wearResumed ? 1 : 0);
    ENVY_TRACE("recovery.done",
               obs::tv("stale_reclaimed", report.staleFlashReclaimed),
               obs::tv("shadows_swept", report.shadowsSwept),
               obs::tv("buffer_kept", report.bufferEntriesKept),
               obs::tv("orphans_dropped", report.bufferOrphansDropped),
               obs::tv("clean_resumed", report.cleanResumed),
               obs::tv("wear_resumed", report.wearResumed));
    return report;
}

} // namespace envy
