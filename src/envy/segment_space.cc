#include "envy/segment_space.hh"

#include <iterator>

#include "common/logging.hh"

namespace envy {

SegmentSpace::SegmentSpace(FlashArray &flash, SramArray &sram, Addr base,
                           obs::MetricsRegistry *metrics)
    : flash_(flash),
      sram_(sram),
      base_(base),
      numLogical_(static_cast<std::uint32_t>(flash.numSegments() - 1)),
      metFlushes(obs::counterOf(metrics, "space.flushes", "pages",
                                "flush clock: pages flushed from the "
                                "write buffer"))
{
    ENVY_ASSERT(base + bytesNeeded(flash.numSegments()) <= sram.size(),
                "segspace: state does not fit in SRAM");
    MutexLock lock(mu_);

    // Fresh system: logical segment L starts on physical segment L;
    // the last physical segment is the erased reserve.
    physOf_.resize(numLogical_);
    logOf_.assign(flash.numSegments(), noLogical);
    for (std::uint32_t l = 0; l < numLogical_; ++l) {
        physOf_[l] = SegmentId(l);
        logOf_[l] = l;
    }
    reserve_ = SegmentId(numLogical_);

    cleanCount_.assign(numLogical_, 0);
    lastCleanClock_.assign(numLogical_, 0);

    persistAll();
    clearCleanRecord();
    clearWearRecord();

    rebuildIndexes();
    installHook();
}

SegmentSpace::~SegmentSpace()
{
    flash_.segmentChangedHook = nullptr;
}

void
SegmentSpace::installHook()
{
    flash_.segmentChangedHook = [this](SegmentId phys) {
        // Runs on whatever thread mutated the flash; it must not
        // already hold mu_ (no locked SegmentSpace method mutates
        // flash — see the lock-order comment in the header).
        MutexLock lock(mu_);
        const std::uint32_t logical = logOf_[phys.value()];
        if (logical != noLogical)
            refreshIndex(logical);
        // Changes to the reserve (cleaning appends) are picked up by
        // the explicit refresh in commitClean/rotateForWear once the
        // segment gains a logical identity.
    };
}

void
SegmentSpace::bitAdd(std::vector<std::int64_t> &bit, std::uint32_t i,
                     std::int64_t delta)
{
    for (std::uint32_t k = i + 1; k <= numLogical_; k += k & (~k + 1))
        bit[k] += delta;
}

std::int64_t
SegmentSpace::bitPrefix(const std::vector<std::int64_t> &bit,
                        std::uint32_t n) const
{
    std::int64_t sum = 0;
    for (std::uint32_t k = n; k > 0; k -= k & (~k + 1))
        sum += bit[k];
    return sum;
}

void
SegmentSpace::rebuildIndexes()
{
    freeOf_.assign(numLogical_, 0);
    invalidOf_.assign(numLogical_, 0);
    liveOf_.assign(numLogical_, 0);
    byFree_.clear();
    byInvalid_.clear();
    freeBit_.assign(std::size_t{numLogical_} + 1, 0);
    liveBit_.assign(std::size_t{numLogical_} + 1, 0);
    freePos_.clear();
    free2Pos_.clear();
    for (std::uint32_t l = 0; l < numLogical_; ++l) {
        byFree_.insert({0, l});
        byInvalid_.insert({0, l});
    }
    for (std::uint32_t l = 0; l < numLogical_; ++l)
        refreshIndex(l);
}

void
SegmentSpace::refreshIndex(std::uint32_t logical)
{
    const SegmentId phys = physOf_[logical];
    const std::uint64_t free = flash_.freeSlots(phys).value();
    const std::uint64_t inv = flash_.invalidCount(phys).value();
    const std::uint64_t live = flash_.liveCount(phys).value();

    const std::uint64_t old_free = freeOf_[logical];
    if (free != old_free) {
        byFree_.erase({old_free, logical});
        byFree_.insert({free, logical});
        bitAdd(freeBit_, logical,
               static_cast<std::int64_t>(free) -
                   static_cast<std::int64_t>(old_free));
        if ((free > 0) != (old_free > 0)) {
            if (free > 0)
                freePos_.insert(logical);
            else
                freePos_.erase(logical);
        }
        if ((free > 1) != (old_free > 1)) {
            if (free > 1)
                free2Pos_.insert(logical);
            else
                free2Pos_.erase(logical);
        }
        freeOf_[logical] = free;
    }
    if (inv != invalidOf_[logical]) {
        byInvalid_.erase({invalidOf_[logical], logical});
        byInvalid_.insert({inv, logical});
        invalidOf_[logical] = inv;
    }
    if (live != liveOf_[logical]) {
        bitAdd(liveBit_, logical,
               static_cast<std::int64_t>(live) -
                   static_cast<std::int64_t>(liveOf_[logical]));
        liveOf_[logical] = live;
    }
}

PageCount
SegmentSpace::maxFreeSlots() const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(!byFree_.empty(), "segspace: empty index");
    return PageCount(std::prev(byFree_.end())->first);
}

std::uint32_t
SegmentSpace::roomiestLogical() const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(!byFree_.empty(), "segspace: empty index");
    const std::uint64_t max = std::prev(byFree_.end())->first;
    return byFree_.lower_bound({max, 0})->second;
}

std::uint32_t
SegmentSpace::mostInvalidLogical() const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(!byInvalid_.empty(), "segspace: empty index");
    return std::prev(byInvalid_.end())->second;
}

PageCount
SegmentSpace::freeInRange(std::uint32_t first, std::uint32_t end) const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(first <= end && end <= numLogical_,
                "segspace: bad range");
    return PageCount(static_cast<std::uint64_t>(
        bitPrefix(freeBit_, end) - bitPrefix(freeBit_, first)));
}

PageCount
SegmentSpace::liveInRange(std::uint32_t first, std::uint32_t end) const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(first <= end && end <= numLogical_,
                "segspace: bad range");
    return PageCount(static_cast<std::uint64_t>(
        bitPrefix(liveBit_, end) - bitPrefix(liveBit_, first)));
}

std::uint32_t
SegmentSpace::firstWithFreeInRange(std::uint32_t first,
                                   std::uint32_t end) const
{
    MutexLock lock(mu_);
    const auto it = freePos_.lower_bound(first);
    return (it != freePos_.end() && *it < end) ? *it : noLogical;
}

std::uint32_t
SegmentSpace::nearestWithSpareFree(std::uint32_t from, int dir) const
{
    MutexLock lock(mu_);
    if (dir > 0) {
        const auto it = free2Pos_.upper_bound(from);
        return it != free2Pos_.end() ? *it : from;
    }
    const auto it = free2Pos_.lower_bound(from);
    return it != free2Pos_.begin() ? *std::prev(it) : from;
}

ByteCount
SegmentSpace::bytesNeeded(std::uint64_t num_segments)
{
    return ByteCount(headerBytes + num_segments * 4);
}

SegmentId
SegmentSpace::physOf(std::uint32_t logical) const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(logical < numLogical_, "bad logical segment ", logical);
    return physOf_[logical];
}

std::uint32_t
SegmentSpace::logOf(SegmentId phys) const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(phys.valid() && phys.value() < logOf_.size(),
                "bad physical segment");
    return logOf_[phys.value()];
}

PageCount
SegmentSpace::freeSlots(std::uint32_t logical) const
{
    return flash_.freeSlots(physOf(logical));
}

PageCount
SegmentSpace::liveCount(std::uint32_t logical) const
{
    return flash_.liveCount(physOf(logical));
}

PageCount
SegmentSpace::invalidCount(std::uint32_t logical) const
{
    return flash_.invalidCount(physOf(logical));
}

double
SegmentSpace::utilization(std::uint32_t logical) const
{
    return flash_.utilization(physOf(logical));
}

void
SegmentSpace::commitClean(std::uint32_t logical)
{
    MutexLock lock(mu_);
    ENVY_ASSERT(logical < numLogical_, "bad logical segment");
    const SegmentId old = physOf_[logical];
    const SegmentId fresh = reserve_;
    physOf_[logical] = fresh;
    logOf_[fresh.value()] = logical;
    logOf_[old.value()] = noLogical;
    reserve_ = old;
    persistAll();
    refreshIndex(logical);
}

void
SegmentSpace::rotateForWear(std::uint32_t a, std::uint32_t b)
{
    MutexLock lock(mu_);
    ENVY_ASSERT(a < numLogical_ && b < numLogical_ && a != b,
                "bad wear rotation");
    // Caller has already moved the data; here we only rewire names:
    // a -> old reserve, b -> a's old home, b's old home -> reserve.
    const SegmentId physA = physOf_[a];
    const SegmentId physB = physOf_[b];
    const SegmentId fresh = reserve_;

    physOf_[a] = fresh;
    logOf_[fresh.value()] = a;
    physOf_[b] = physA;
    logOf_[physA.value()] = b;
    logOf_[physB.value()] = noLogical;
    reserve_ = physB;
    persistAll();
    refreshIndex(a);
    refreshIndex(b);
}

std::uint64_t
SegmentSpace::cleanCount(std::uint32_t logical) const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(logical < numLogical_, "bad logical segment");
    return cleanCount_[logical];
}

std::uint64_t
SegmentSpace::lastCleanClock(std::uint32_t logical) const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(logical < numLogical_, "bad logical segment");
    return lastCleanClock_[logical];
}

void
SegmentSpace::noteClean(std::uint32_t logical)
{
    MutexLock lock(mu_);
    ENVY_ASSERT(logical < numLogical_, "bad logical segment");
    ++cleanCount_[logical];
    lastCleanClock_[logical] = flushClock_;
}

void
SegmentSpace::beginCleanRecord(std::uint32_t logical, SegmentId victim,
                               SegmentId dest)
{
    sram_.writeUint(base_ + 4, 1, 4);
    sram_.writeUint(base_ + 8, logical, 4);
    sram_.writeUint(base_ + 12, victim.value(), 4);
    sram_.writeUint(base_ + 16, dest.value(), 4);
}

void
SegmentSpace::clearCleanRecord()
{
    sram_.writeUint(base_ + 4, 0, 4);
}

SegmentSpace::CleanRecord
SegmentSpace::cleanRecord() const
{
    CleanRecord r;
    r.inProgress = sram_.readUint(base_ + 4, 4) != 0;
    r.logical = static_cast<std::uint32_t>(sram_.readUint(base_ + 8, 4));
    r.victimPhys = SegmentId(sram_.readUint(base_ + 12, 4));
    r.destPhys = SegmentId(sram_.readUint(base_ + 16, 4));
    return r;
}

void
SegmentSpace::beginWearRecord(std::uint32_t hot, std::uint32_t cold,
                              SegmentId phys_old, SegmentId phys_young,
                              SegmentId fresh)
{
    sram_.writeUint(base_ + 24, hot, 4);
    sram_.writeUint(base_ + 28, cold, 4);
    sram_.writeUint(base_ + 32, phys_old.value(), 4);
    sram_.writeUint(base_ + 36, phys_young.value(), 4);
    sram_.writeUint(base_ + 40, fresh.value(), 4);
    // Stage last: the record is only meaningful once complete.
    sram_.writeUint(base_ + 20, 1, 4);
}

void
SegmentSpace::advanceWearRecord(std::uint32_t stage)
{
    ENVY_ASSERT(stage == 2, "bad wear stage");
    sram_.writeUint(base_ + 20, stage, 4);
}

void
SegmentSpace::clearWearRecord()
{
    sram_.writeUint(base_ + 20, 0, 4);
}

SegmentSpace::WearRecord
SegmentSpace::wearRecord() const
{
    WearRecord r;
    r.stage = static_cast<std::uint32_t>(sram_.readUint(base_ + 20, 4));
    r.hot = static_cast<std::uint32_t>(sram_.readUint(base_ + 24, 4));
    r.cold = static_cast<std::uint32_t>(sram_.readUint(base_ + 28, 4));
    r.physOld = SegmentId(sram_.readUint(base_ + 32, 4));
    r.physYoung = SegmentId(sram_.readUint(base_ + 36, 4));
    r.fresh = SegmentId(sram_.readUint(base_ + 40, 4));
    return r;
}

void
SegmentSpace::persistAll()
{
    sram_.writeUint(base_, reserve_.value(), 4);
    for (std::uint32_t l = 0; l < numLogical_; ++l)
        sram_.writeUint(physOfAddr(l), physOf_[l].value(), 4);
}

void
SegmentSpace::recover()
{
    MutexLock lock(mu_);
    reserve_ = SegmentId(sram_.readUint(base_, 4));
    ENVY_ASSERT(reserve_.value() < flash_.numSegments(),
                "corrupt reserve pointer after power failure");
    logOf_.assign(flash_.numSegments(), noLogical);
    for (std::uint32_t l = 0; l < numLogical_; ++l) {
        physOf_[l] = SegmentId(sram_.readUint(physOfAddr(l), 4));
        ENVY_ASSERT(physOf_[l].value() < flash_.numSegments(),
                    "corrupt physOf table after power failure");
        logOf_[physOf_[l].value()] = l;
    }
    // Policy clocks restart: they are performance heuristics, not
    // correctness state.
    flushClock_ = 0;
    cleanCount_.assign(numLogical_, 0);
    lastCleanClock_.assign(numLogical_, 0);

    rebuildIndexes();
    installHook();
}

} // namespace envy
