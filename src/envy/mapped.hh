/**
 * @file
 * Typed views over the eNVy linear array.
 *
 * The paper's interface argument (§1): persistent storage accessed
 * "by means of word-sized reads and writes, just as with
 * conventional memory" shrinks code because there are no block
 * boundaries or save formats.  These small wrappers carry that idea
 * into typed C++: a MappedValue<T> or MappedArray<T> behaves like a
 * T (or T[]) that happens to be persistent — every load/store goes
 * through the controller, so copy-on-write, cleaning and recovery
 * all apply transparently.
 *
 * T must be trivially copyable; values are stored in the host's
 * byte order (the store is the host's memory, not an interchange
 * format).
 */

#ifndef ENVY_ENVY_MAPPED_HH
#define ENVY_ENVY_MAPPED_HH

#include <cstring>
#include <type_traits>

#include "common/logging.hh"
#include "envy/envy_store.hh"

namespace envy {

template <typename T>
class MappedValue
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "mapped types must be trivially copyable");

  public:
    MappedValue(EnvyStore &store, Addr addr)
        : store_(&store), addr_(addr)
    {
    }

    /** Load the persistent value. */
    T
    get() const
    {
        alignas(T) std::uint8_t raw[sizeof(T)];
        store_->read(addr_, raw);
        T v;
        std::memcpy(&v, raw, sizeof(T));
        return v;
    }

    /** Store a new value (in place, as far as the host can tell). */
    void
    set(const T &v)
    {
        std::uint8_t raw[sizeof(T)];
        std::memcpy(raw, &v, sizeof(T));
        store_->write(addr_, raw);
    }

    operator T() const { return get(); }
    MappedValue &
    operator=(const T &v)
    {
        set(v);
        return *this;
    }

    /** Read-modify-write helper. */
    template <typename Fn>
    T
    update(Fn &&fn)
    {
        T v = get();
        fn(v);
        set(v);
        return v;
    }

    Addr address() const { return addr_; }

  private:
    EnvyStore *store_;
    Addr addr_;
};

template <typename T>
class MappedArray
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "mapped types must be trivially copyable");

  public:
    MappedArray(EnvyStore &store, Addr base, std::uint64_t count)
        : store_(&store), base_(base), count_(count)
    {
    }

    std::uint64_t size() const { return count_; }
    std::uint64_t bytes() const { return count_ * sizeof(T); }

    MappedValue<T>
    operator[](std::uint64_t i) const
    {
        return MappedValue<T>(*store_, base_ + i * sizeof(T));
    }

    T at(std::uint64_t i) const { return (*this)[i].get(); }
    void
    put(std::uint64_t i, const T &v)
    {
        (*this)[i].set(v);
    }

    /** Bulk fill (one controller call per element's span). */
    void
    fill(const T &v)
    {
        for (std::uint64_t i = 0; i < count_; ++i)
            put(i, v);
    }

    Addr address() const { return base_; }

  private:
    EnvyStore *store_;
    Addr base_;
    std::uint64_t count_;
};

/**
 * Bump allocator for laying out mapped structures in a region of
 * the array (the moral equivalent of a linker script for NVM).
 */
class MappedArena
{
  public:
    MappedArena(EnvyStore &store, Addr base, std::uint64_t bytes)
        : store_(&store), cursor_(base), limit_(base + bytes)
    {
    }

    template <typename T>
    MappedValue<T>
    value()
    {
        return MappedValue<T>(*store_, take(sizeof(T), alignof(T)));
    }

    template <typename T>
    MappedArray<T>
    array(std::uint64_t count)
    {
        return MappedArray<T>(
            *store_, take(count * sizeof(T), alignof(T)), count);
    }

    Addr
    take(std::uint64_t bytes, std::uint64_t align = 8)
    {
        cursor_ = (cursor_ + align - 1) / align * align;
        const Addr at = cursor_;
        cursor_ += bytes;
        if (cursor_ > limit_)
            ENVY_FATAL("mapped: arena exhausted");
        return at;
    }

    std::uint64_t remaining() const { return limit_ - cursor_; }

  private:
    EnvyStore *store_;
    Addr cursor_;
    Addr limit_;
};

} // namespace envy

#endif // ENVY_ENVY_MAPPED_HH
