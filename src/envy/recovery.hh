/**
 * @file
 * Crash recovery (paper §3.2–§3.4).
 *
 * eNVy survives power failure because every piece of state that
 * matters is non-volatile: page data is in flash or in battery-backed
 * SRAM, the page table is in battery-backed SRAM, and "the state of
 * the cleaning process is kept in persistent memory so the controller
 * can recover quickly after a failure" (§3.4).
 *
 * Recovery rebuilds the in-core mirrors from those domains, then
 * repairs the two inconsistency windows the design allows:
 *
 *  - a page programmed into flash whose page-table swing never
 *    happened (crash during a flush) leaves a stale duplicate that is
 *    simply re-invalidated;
 *  - a write-buffer slot populated whose page-table swing never
 *    happened (crash during a copy-on-write) leaves an orphan slot
 *    that is dropped while the buffer is rebuilt.
 *
 * Finally, an interrupted clean — recognisable from the persistent
 * clean record — is resumed and committed.  In all cases the page
 * table is the commit point: a logical page's data is whatever the
 * table pointed at when power died, which is exactly the paper's
 * "changes do not become visible until the page table is updated".
 */

#ifndef ENVY_ENVY_RECOVERY_HH
#define ENVY_ENVY_RECOVERY_HH

namespace envy {

class EnvyStore;

class Recovery
{
  public:
    /** Simulate power failure on @p store and bring it back up. */
    static void run(EnvyStore &store);
};

} // namespace envy

#endif // ENVY_ENVY_RECOVERY_HH
