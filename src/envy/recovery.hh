/**
 * @file
 * Crash recovery (paper §3.2–§3.4).
 *
 * eNVy survives power failure because every piece of state that
 * matters is non-volatile: page data is in flash or in battery-backed
 * SRAM, the page table is in battery-backed SRAM, and "the state of
 * the cleaning process is kept in persistent memory so the controller
 * can recover quickly after a failure" (§3.4).
 *
 * Recovery rebuilds the in-core mirrors from those domains, then
 * repairs the inconsistency windows the design allows:
 *
 *  - a page programmed into flash whose page-table swing never
 *    happened (crash during a flush or a cleaner relocation) leaves a
 *    stale duplicate that is simply re-invalidated;
 *  - a write-buffer slot populated whose page-table swing never
 *    happened (crash during a copy-on-write) leaves an orphan slot
 *    that is dropped while the buffer is rebuilt;
 *  - transaction shadows (§6) whose bookkeeping lived in the (lost)
 *    ShadowManager are swept back to reclaimable space — the page
 *    table already holds each page's committed location;
 *  - an interrupted wear-leveling rotation — recognisable from the
 *    persistent wear record — is driven to completion;
 *  - an interrupted clean — recognisable from the persistent clean
 *    record — is resumed and committed (or, if the crash landed
 *    between the commit and the record clear, merely acknowledged).
 *
 * In all cases the page table is the commit point: a logical page's
 * data is whatever the table pointed at when power died, which is
 * exactly the paper's "changes do not become visible until the page
 * table is updated".
 */

#ifndef ENVY_ENVY_RECOVERY_HH
#define ENVY_ENVY_RECOVERY_HH

#include <cstdint>

namespace envy {

class EnvyStore;

/** What recovery found and repaired (one power failure's worth). */
struct RecoveryReport
{
    /** Flash slots whose page-table swing never happened. */
    std::uint64_t staleFlashReclaimed = 0;
    /** §6 shadow slots reclaimed (their transactions died with
     *  the power). */
    std::uint64_t shadowsSwept = 0;
    /** Write-buffer pages that survived with their FIFO order. */
    std::uint64_t bufferEntriesKept = 0;
    /** Buffer slots dropped: pushes whose table swing never
     *  happened. */
    std::uint64_t bufferOrphansDropped = 0;
    /** A clean was in flight and has been resumed to completion. */
    bool cleanResumed = false;
    /** The clean had already committed; only its record was stale. */
    bool cleanRecordOnlyCleared = false;
    /** A wear-leveling rotation was in flight and has been finished. */
    bool wearResumed = false;
};

class Recovery
{
  public:
    /** Simulate power failure on @p store and bring it back up. */
    static RecoveryReport run(EnvyStore &store);
};

} // namespace envy

#endif // ENVY_ENVY_RECOVERY_HH
