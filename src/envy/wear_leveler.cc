#include "envy/wear_leveler.hh"

#include "common/logging.hh"
#include "envy/cleaner.hh"
#include "envy/segment_space.hh"

namespace envy {

WearLeveler::WearLeveler(std::uint64_t threshold, StatGroup *parent)
    : StatGroup("wearLeveler", parent),
      statRotations(this, "rotations", "oldest/youngest data rotations"),
      threshold_(threshold)
{
}

std::uint64_t
WearLeveler::spread(const SegmentSpace &space) const
{
    const FlashArray &flash = space.flash();
    std::uint64_t lo = ~0ull, hi = 0;
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const std::uint64_t c = flash.eraseCycles(space.physOf(l));
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    return hi - lo;
}

bool
WearLeveler::maybeRotate(SegmentSpace &space, Cleaner &cleaner)
{
    if (busy_)
        return false;

    FlashArray &flash = space.flash();
    if (lastRotation_.size() < flash.numSegments())
        lastRotation_.assign(flash.numSegments(), 0);

    // The oldest *eligible* segment: one that has aged a further
    // threshold since it last took part in a rotation (see header).
    std::uint32_t oldest = 0, youngest = 0;
    std::uint64_t lo = ~0ull, hi = 0;
    bool have_oldest = false;
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId phys = space.physOf(l);
        const std::uint64_t c = flash.eraseCycles(phys);
        const bool eligible =
            c >= lastRotation_[phys.value()] + threshold_;
        if (eligible && (!have_oldest || c > hi)) {
            hi = c;
            oldest = l;
            have_oldest = true;
        }
        if (c < lo) {
            lo = c;
            youngest = l;
        }
    }
    if (!have_oldest || hi - lo <= threshold_ || oldest == youngest)
        return false;

    busy_ = true;
    // Rotation through the reserve (see file comment in the header):
    //   1. data of `oldest` (hot)  -> reserve
    //   2. data of `youngest` (cold) -> oldest's worn home
    //   3. youngest's old home becomes the new reserve
    const SegmentId physOld = space.physOf(oldest);
    const SegmentId physYoung = space.physOf(youngest);
    const SegmentId fresh = space.reserve();

    FlashArray &fa = space.flash();
    auto moveAll = [&](SegmentId src, SegmentId dst) {
        std::vector<std::pair<std::uint32_t, LogicalPageId>> live;
        fa.forEachLive(src, [&](std::uint32_t slot, LogicalPageId p) {
            live.emplace_back(slot, p);
        });
        std::vector<std::uint8_t> buf(
            fa.storesData() ? fa.geom().pageSize : 0);
        for (auto [slot, logical] : live) {
            const FlashPageAddr s{src, slot};
            if (fa.storesData())
                fa.readPage(s, buf);
            const FlashPageAddr d = fa.appendPage(dst, logical, buf);
            cleaner.mmu().mapToFlash(logical, d);
            fa.invalidatePage(s);
            ++cleaner.statCleanerPrograms;
        }
        std::vector<std::uint32_t> shadows;
        fa.forEachShadow(src, [&](std::uint32_t slot) {
            shadows.push_back(slot);
        });
        for (const std::uint32_t slot : shadows) {
            const FlashPageAddr s{src, slot};
            if (fa.storesData())
                fa.readPage(s, buf);
            const FlashPageAddr d = fa.appendShadow(dst, buf);
            fa.invalidatePage(s);
            ++cleaner.statCleanerPrograms;
            if (cleaner.shadowMoved)
                cleaner.shadowMoved(s, d);
        }
    };

    moveAll(physOld, fresh);
    fa.eraseSegment(physOld);
    moveAll(physYoung, physOld);
    fa.eraseSegment(physYoung);
    space.rotateForWear(oldest, youngest);

    // Every participant waits out a full threshold of further wear
    // before rotating again.
    lastRotation_[physOld.value()] = fa.eraseCycles(physOld);
    lastRotation_[physYoung.value()] = fa.eraseCycles(physYoung);
    lastRotation_[fresh.value()] = fa.eraseCycles(fresh);

    ++statRotations;
    ++cleaner.statWearRotations;
    busy_ = false;
    return true;
}

} // namespace envy
