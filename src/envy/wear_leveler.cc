#include "envy/wear_leveler.hh"

#include "common/logging.hh"
#include "envy/cleaner.hh"
#include "envy/segment_space.hh"
#include "faults/crash_point.hh"
#include "obs/trace.hh"

namespace envy {

WearLeveler::WearLeveler(std::uint64_t threshold, StatGroup *parent,
                         obs::MetricsRegistry *metrics)
    : StatGroup("wearLeveler", parent),
      statRotations(this, "rotations", "oldest/youngest data rotations"),
      metRotations(obs::counterOf(metrics, "wear.rotations", "rotations",
                                  "oldest/youngest data rotations")),
      metSpread(obs::gaugeOf(metrics, "wear.spread", "cycles",
                             "max-min erase-cycle spread over data "
                             "segments, sampled at each trigger check")),
      threshold_(threshold)
{
}

std::uint64_t
WearLeveler::spread(const SegmentSpace &space) const
{
    const FlashArray &flash = space.flash();
    std::uint64_t lo = ~0ull, hi = 0;
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const std::uint64_t c = flash.eraseCycles(space.physOf(l));
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    return hi - lo;
}

bool
WearLeveler::maybeRotate(SegmentSpace &space, Cleaner &cleaner)
{
    MutexLock lock(mu_);
    if (busy_)
        return false;

    FlashArray &flash = space.flash();
    if (lastRotation_.size() < flash.numSegments())
        lastRotation_.assign(flash.numSegments(), 0);

    // The oldest *eligible* segment: one that has aged a further
    // threshold since it last took part in a rotation (see header).
    std::uint32_t oldest = 0, youngest = 0;
    std::uint64_t lo = ~0ull, hi = 0, true_hi = 0;
    bool have_oldest = false;
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId phys = space.physOf(l);
        const std::uint64_t c = flash.eraseCycles(phys);
        true_hi = std::max(true_hi, c);
        const bool eligible =
            c >= lastRotation_[phys.value()] + threshold_;
        if (eligible && (!have_oldest || c > hi)) {
            hi = c;
            oldest = l;
            have_oldest = true;
        }
        if (c < lo) {
            lo = c;
            youngest = l;
        }
    }
    // `hi` only tracks eligible segments; the gauge wants the true
    // spread, which the same pass already saw.
    metSpread.set(static_cast<double>(true_hi - lo));
    if (!have_oldest || hi - lo <= threshold_ || oldest == youngest)
        return false;

    busy_ = true;
    // Rotation through the reserve (see file comment in the header):
    //   1. data of `oldest` (hot)  -> reserve
    //   2. data of `youngest` (cold) -> oldest's worn home
    //   3. youngest's old home becomes the new reserve
    // The persistent wear record stages the progress: a power
    // failure at any point leaves enough state for resumeRotation()
    // to finish the job.
    const SegmentId physOld = space.physOf(oldest);
    const SegmentId physYoung = space.physOf(youngest);
    const SegmentId fresh = space.reserve();
    FlashArray &fa = space.flash();

    space.beginWearRecord(oldest, youngest, physOld, physYoung, fresh);
    ENVY_CRASH_POINT("wear.rotate.begin");
    cleaner.moveAllPhysical(physOld, fresh);
    ENVY_CRASH_POINT("wear.rotate.after_first_move");
    fa.eraseSegment(physOld);
    ENVY_CRASH_POINT("wear.rotate.after_first_erase");
    space.advanceWearRecord(2);
    cleaner.moveAllPhysical(physYoung, physOld);
    ENVY_CRASH_POINT("wear.rotate.after_second_move");
    fa.eraseSegment(physYoung);
    ENVY_CRASH_POINT("wear.rotate.after_second_erase");
    space.rotateForWear(oldest, youngest);
    ENVY_CRASH_POINT("wear.rotate.after_commit");
    space.clearWearRecord();

    finishRotation(space, cleaner, physOld, physYoung, fresh);
    return true;
}

bool
WearLeveler::resumeRotation(SegmentSpace &space, Cleaner &cleaner)
{
    MutexLock lock(mu_);
    // A power failure wiped the in-core recursion guard with the
    // rest of the machine.
    busy_ = false;

    const SegmentSpace::WearRecord rec = space.wearRecord();
    if (rec.stage == 0)
        return false;

    FlashArray &fa = space.flash();
    if (lastRotation_.size() < fa.numSegments())
        lastRotation_.assign(fa.numSegments(), 0);
    const SegmentId physOld{rec.physOld};
    const SegmentId physYoung{rec.physYoung};
    const SegmentId fresh{rec.fresh};

    busy_ = true;
    if (rec.stage == 1) {
        // Finish moving hot's remaining pages onto the old reserve.
        cleaner.moveAllPhysical(physOld, fresh);
        if (fa.usedSlots(physOld) > PageCount(0))
            fa.eraseSegment(physOld);
        space.advanceWearRecord(2);
    }
    // Stage 2: cold's data moves onto the worn segment and the
    // naming commit follows — unless the commit already happened
    // (crash between rotateForWear and clearWearRecord),
    // recognisable because hot already lives on fresh.
    if (space.physOf(rec.hot) != rec.fresh) {
        cleaner.moveAllPhysical(physYoung, physOld);
        if (fa.usedSlots(physYoung) > PageCount(0))
            fa.eraseSegment(physYoung);
        space.rotateForWear(rec.hot, rec.cold);
    }
    space.clearWearRecord();

    finishRotation(space, cleaner, physOld, physYoung, fresh);
    return true;
}

void
WearLeveler::finishRotation(SegmentSpace &space, Cleaner &cleaner,
                            SegmentId phys_old, SegmentId phys_young,
                            SegmentId fresh)
{
    // Every participant waits out a full threshold of further wear
    // before rotating again.
    const FlashArray &fa = space.flash();
    lastRotation_[phys_old.value()] = fa.eraseCycles(phys_old);
    lastRotation_[phys_young.value()] = fa.eraseCycles(phys_young);
    lastRotation_[fresh.value()] = fa.eraseCycles(fresh);

    ++statRotations;
    ++cleaner.statWearRotations;
    metRotations.add();
    ENVY_TRACE("wear.rotate", obs::tv("phys_old", phys_old.value()),
               obs::tv("phys_young", phys_young.value()),
               obs::tv("fresh", fresh.value()),
               obs::tv("spread", spread(space)));
    busy_ = false;
}

} // namespace envy
