/**
 * @file
 * The logical-to-physical page table (paper §3.3).
 *
 * The table maps each 256-byte logical page to either a flash location
 * (segment, slot) or a write-buffer slot in SRAM.  Mappings change in
 * place on every copy-on-write, so the table itself must live in
 * battery-backed SRAM — flash cannot hold it.  Entries are packed into
 * 6 bytes, the figure the paper uses for its cost analysis (24 MB of
 * SRAM per GB of flash).
 *
 * Entry layout (48 bits, little-endian in SRAM):
 *   all-ones                  unmapped
 *   bit 47 = 1                SRAM:  bits [31:0]  buffer slot
 *   bit 47 = 0                flash: bits [46:32] segment,
 *                                    bits [31:0]  slot
 */

#ifndef ENVY_ENVY_PAGE_TABLE_HH
#define ENVY_ENVY_PAGE_TABLE_HH

#include <cstdint>

#include "common/types.hh"
#include "sram/sram_array.hh"

namespace envy {

class PageTable
{
  public:
    enum class LocKind : std::uint8_t { Unmapped, Flash, Sram };

    struct Location
    {
        LocKind kind = LocKind::Unmapped;
        FlashPageAddr flash;        //!< valid when kind == Flash
        BufferSlotId sramSlot{0};   //!< valid when kind == Sram

        bool mapped() const { return kind != LocKind::Unmapped; }
    };

    static constexpr unsigned entryBytes = 6;

    /**
     * @param sram     backing battery-backed SRAM
     * @param base     byte offset of the table inside @p sram
     * @param entries  number of logical pages
     */
    PageTable(SramArray &sram, Addr base, std::uint64_t entries);

    static std::uint64_t
    bytesNeeded(std::uint64_t entries)
    {
        return entries * entryBytes;
    }

    std::uint64_t entries() const { return entries_; }

    Location lookup(LogicalPageId page) const;
    void mapToFlash(LogicalPageId page, FlashPageAddr addr);
    void mapToSram(LogicalPageId page, BufferSlotId slot);
    void unmap(LogicalPageId page);

    /** Count of mapped entries (linear scan; for tests/recovery). */
    std::uint64_t countMapped() const;

  private:
    static constexpr std::uint64_t rawUnmapped = 0xFFFFFFFFFFFFull;
    static constexpr std::uint64_t sramFlag = 1ull << 47;

    Addr entryAddr(LogicalPageId page) const
    {
        return base_ + page.value() * entryBytes;
    }

    void checkPage(LogicalPageId page) const;

    SramArray &sram_;
    Addr base_;
    std::uint64_t entries_;
};

} // namespace envy

#endif // ENVY_ENVY_PAGE_TABLE_HH
