#include "envy/page_table.hh"

#include "common/logging.hh"

namespace envy {

PageTable::PageTable(SramArray &sram, Addr base, std::uint64_t entries)
    : sram_(sram), base_(base), entries_(entries)
{
    ENVY_ASSERT(base + bytesNeeded(entries) <= sram.size(),
                "pagetable: table does not fit in SRAM");
    for (std::uint64_t p = 0; p < entries_; ++p)
        sram_.writeUint(base_ + p * entryBytes, rawUnmapped, entryBytes);
}

void
PageTable::checkPage(LogicalPageId page) const
{
    ENVY_ASSERT(page.valid() && page.value() < entries_,
                "pagetable: logical page out of range: ", page.value());
}

PageTable::Location
PageTable::lookup(LogicalPageId page) const
{
    checkPage(page);
    const std::uint64_t raw = sram_.readUint(entryAddr(page), entryBytes);
    Location loc;
    if (raw == rawUnmapped) {
        loc.kind = LocKind::Unmapped;
    } else if (raw & sramFlag) {
        loc.kind = LocKind::Sram;
        loc.sramSlot = BufferSlotId(static_cast<std::uint32_t>(raw));
    } else {
        loc.kind = LocKind::Flash;
        loc.flash.segment = SegmentId((raw >> 32) & 0x7FFF);
        loc.flash.slot = SlotId(static_cast<std::uint32_t>(raw));
    }
    return loc;
}

void
PageTable::mapToFlash(LogicalPageId page, FlashPageAddr addr)
{
    checkPage(page);
    ENVY_ASSERT(addr.segment.valid() && addr.segment.value() < 0x7FFF,
                "pagetable: segment id does not fit the 6-byte entry");
    const std::uint64_t raw =
        (addr.segment.value() << 32) | addr.slot.value();
    sram_.writeUint(entryAddr(page), raw, entryBytes);
}

void
PageTable::mapToSram(LogicalPageId page, BufferSlotId slot)
{
    checkPage(page);
    sram_.writeUint(entryAddr(page), sramFlag | slot.value(),
                    entryBytes);
}

void
PageTable::unmap(LogicalPageId page)
{
    checkPage(page);
    sram_.writeUint(entryAddr(page), rawUnmapped, entryBytes);
}

std::uint64_t
PageTable::countMapped() const
{
    std::uint64_t n = 0;
    for (std::uint64_t p = 0; p < entries_; ++p) {
        if (sram_.readUint(base_ + p * entryBytes, entryBytes) !=
            rawUnmapped)
            ++n;
    }
    return n;
}

} // namespace envy
