/**
 * @file
 * Shared cleaning mechanics (paper §3.4, Fig 5).
 *
 * Cleaning copies the live pages of a victim segment, in slot order,
 * into the reserved erased segment, updates the page table as each
 * page lands, then erases the victim — which becomes the new reserve.
 * Policies parameterise the process through divert(): individual live
 * pages can be sent to *other* segments instead, which is how locality
 * gathering and the hybrid scheme redistribute data (§4.3, §4.4).
 *
 * The cleaning cost of §4.1 is cleaner program operations per flushed
 * page; this class owns the program-side counters and SegmentSpace
 * owns the flush clock.
 */

#ifndef ENVY_ENVY_CLEANER_HH
#define ENVY_ENVY_CLEANER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_annotations.hh"
#include "envy/mmu.hh"
#include "envy/policy/cleaning_policy.hh"
#include "envy/segment_space.hh"
#include "sim/stats.hh"

namespace envy {

class WearLeveler;

class Cleaner : public StatGroup
{
  public:
    struct CleanResult
    {
        PageCount copied;   //!< programs into the new segment
        PageCount diverted; //!< programs into other segments
        Tick busyTime = 0;  //!< device time consumed
    };

    Cleaner(SegmentSpace &space, Mmu &mmu,
            WearLeveler *wear_leveler = nullptr,
            StatGroup *parent = nullptr,
            obs::MetricsRegistry *metrics = nullptr);

    /**
     * Clean logical segment @p log_seg.  @p policy (may be null) steers
     * per-page diverts and is notified on completion.
     */
    CleanResult clean(std::uint32_t log_seg, CleaningPolicy *policy);

    /**
     * Finish a clean that a power failure interrupted: the reserve
     * already holds the pages relocated before the crash, so the
     * erased-reserve precondition is waived and no policy diverts
     * apply.
     */
    CleanResult resume(std::uint32_t log_seg);

    /**
     * Relocate up to @p count live pages from the head (coldest) or
     * tail (hottest) of @p from into @p to's free space.  Used by
     * pull-style redistribution and by the wear leveler.
     *
     * @return pages actually moved.
     */
    PageCount movePages(std::uint32_t from, std::uint32_t to,
                        bool from_tail, PageCount count);

    /**
     * Move every live page and shadow of *physical* segment @p src
     * into @p dst (wear-leveling rotations and their crash recovery;
     * the segments need not have logical identities yet).
     *
     * @return pages moved.
     */
    PageCount moveAllPhysical(SegmentId src, SegmentId dst);

    /** Cleaning cost so far: cleaner programs / pages flushed. */
    double cleaningCost() const;

    /** Device time consumed by cleaning + erasing since reset. */
    Tick busyTime() const
    {
        MutexLock lock(mu_);
        return busyTime_;
    }

    /**
     * Device time this *thread* has spent cleaning since process
     * start.  Single-threaded the delta across a call equals the
     * busyTime() delta; with background cleaners it attributes inline
     * cleaning to the flushing thread and background cleaning to the
     * pool, so the controller's flush-latency accounting does not
     * absorb another thread's work (PR 8).
     */
    static Tick threadBusyTime() { return tlBusy_; }

    /**
     * Invoked whenever a shadow copy (§6 transactions) is relocated
     * so its owner can re-point at the new slot.
     */
    std::function<void(FlashPageAddr from, FlashPageAddr to)>
        shadowMoved;

    Counter statCleans;
    Counter statCleanerPrograms;
    Counter statWearRotations;

    // Observability metrics (docs/OBSERVABILITY.md).
    obs::Counter metSegmentsCleaned;
    obs::Counter metPagesCopied;   //!< cleaner programs, diverts included
    obs::Gauge metCleaningCost;    //!< cleaningCost() after each clean
    obs::Histogram metVictimLive;  //!< live pages per cleaned victim

    SegmentSpace &space() { return space_; }
    Mmu &mmu() { return mmu_; }

  private:
    CleanResult cleanInternal(std::uint32_t log_seg,
                              CleaningPolicy *policy, bool resuming)
        ENVY_REQUIRES(mu_);

    /** Relocate one live page; updates map and invalidates source. */
    void relocate(SegmentId src_phys, SlotId slot,
                  LogicalPageId logical, SegmentId dst_phys)
        ENVY_REQUIRES(mu_);

    /** Carry every shadow of @p src into @p dst; returns count. */
    PageCount moveShadows(SegmentId src, SegmentId dst)
        ENVY_REQUIRES(mu_);

    SegmentSpace &space_;
    Mmu &mmu_;
    WearLeveler *wearLeveler_;
    /** Cached storesData() so metadata-only runs skip the dead
     *  read/copy path without re-asking the array per page. */
    bool copyData_;

    // Guards the per-clean work lists and the busy-time clock.  The
    // policy onCleaned()/wear-rotation callbacks re-enter the cleaner
    // through movePages()/moveAllPhysical(), so clean()/resume() run
    // them only after this lock is released.
    mutable Mutex mu_;
    std::vector<std::uint8_t> scratch_ ENVY_GUARDED_BY(mu_);
    /** Reused per-clean work lists: cleaning is the hot path of every
     *  long-running experiment, so the live/shadow snapshots must not
     *  allocate per call.  Not reentrant — relocate() never cleans. */
    std::vector<std::pair<SlotId, LogicalPageId>>
        liveScratch_ ENVY_GUARDED_BY(mu_);
    std::vector<SlotId> shadowScratch_ ENVY_GUARDED_BY(mu_);
    Tick busyTime_ ENVY_GUARDED_BY(mu_) = 0;

    /** Per-thread slice of busyTime_ (see threadBusyTime()). */
    void chargeBusy(Tick t) ENVY_REQUIRES(mu_)
    {
        busyTime_ += t;
        tlBusy_ += t;
    }
    static thread_local Tick tlBusy_;
};

} // namespace envy

#endif // ENVY_ENVY_CLEANER_HH
