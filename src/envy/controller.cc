#include "envy/controller.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.hh"
#include "faults/crash_point.hh"
#include "obs/trace.hh"

namespace envy {

thread_local Tick Controller::tlDeviceBusy_ = 0;

namespace {

// Flush-latency buckets in device ticks (ns): flush alone is a few
// hundred µs; a flush that triggered cleaning or an erase lands in
// the ms decades.
std::vector<std::uint64_t>
flushTickEdges()
{
    return {100'000, 300'000, 1'000'000, 3'000'000, 10'000'000,
            30'000'000, 100'000'000, 300'000'000, 1'000'000'000};
}

} // namespace

Controller::Controller(const Geometry &geom, FlashArray &flash,
                       Mmu &mmu, WriteBuffer &buffer,
                       SegmentSpace &space, Cleaner &cleaner,
                       CleaningPolicy &policy, bool auto_drain,
                       StatGroup *parent, obs::MetricsRegistry *metrics)
    : StatGroup("controller", parent),
      statHostReads(this, "hostReads", "host read accesses"),
      statHostWrites(this, "hostWrites", "host write accesses"),
      statCows(this, "cows", "copy-on-write operations"),
      statBufferHits(this, "bufferHits",
                     "writes absorbed by a resident buffer page"),
      statForegroundFlushes(this, "foregroundFlushes",
                            "flushes a host write had to wait for"),
      statFlushRetries(this, "flushRetries",
                       "flush programs retried after a spec-failure"),
      metHostReads(obs::counterOf(metrics, "ctl.host_reads", "accesses",
                                  "host read accesses")),
      metHostWrites(obs::counterOf(metrics, "ctl.host_writes",
                                   "accesses", "host write accesses")),
      metCows(obs::counterOf(metrics, "ctl.cows", "pages",
                             "copy-on-write operations")),
      metBufferHits(obs::counterOf(metrics, "ctl.buffer_hits",
                                   "accesses",
                                   "writes absorbed by a resident "
                                   "buffer page")),
      metForegroundFlushes(obs::counterOf(metrics,
                                          "ctl.foreground_flushes",
                                          "flushes",
                                          "flushes a host write had to "
                                          "wait for")),
      metFlushRetries(obs::counterOf(metrics, "ctl.flush_retries",
                                     "programs",
                                     "flush programs retried after a "
                                     "spec-failure")),
      metBackpressureWaits(obs::counterOf(metrics,
                                          "ctl.backpressure_waits",
                                          "waits",
                                          "producer waits for buffer "
                                          "room while cleaners catch "
                                          "up (concurrent mode)")),
      metBackgroundCleans(obs::counterOf(metrics,
                                         "ctl.background_cleans",
                                         "segments",
                                         "segments cleaned by the "
                                         "background cleaner pool")),
      metFlushTicks(obs::histogramOf(metrics, "ctl.flush_ticks", "ns",
                                     "device time consumed per flush, "
                                     "cleaning included",
                                     flushTickEdges())),
      geom_(geom),
      flash_(flash),
      mmu_(mmu),
      buffer_(buffer),
      space_(space),
      cleaner_(cleaner),
      policy_(policy),
      autoDrain_(auto_drain),
      scratch_(flash.storesData() ? geom.pageSize : 0)
{
    policy_.attach(space_, cleaner_);
    for (std::uint64_t i = 0; i < numShards; ++i)
        shardMu_.emplace_back();
}

void
Controller::setConcurrency(unsigned num_workers, unsigned num_cleaners)
{
    concurrent_ = num_workers > 1 || num_cleaners > 0;
    numCleaners_ = num_cleaners;
}

bool
Controller::backgroundCleanOnce(PageCount watermark)
{
    ExclusiveLock s(structMu_);
    const std::uint32_t seg = policy_.backgroundClean(watermark);
    if (seg == CleaningPolicy::noSegment)
        return false;
    metBackgroundCleans.add();
    return true;
}

void
Controller::notifyRoom()
{
    roomCv_.notify_all();
}

void
Controller::quiesce(const std::function<void()> &fn)
{
    if (concurrent_) {
        ExclusiveLock s(structMu_);
        fn();
        return;
    }
    MutexLock lock(mu_);
    fn();
}

void
Controller::populate(Placement placement, std::uint32_t aged_stride)
{
    MutexLock lock(mu_);
    const std::uint64_t pages = geom_.effectiveLogicalPages().value();
    const std::uint32_t segs = space_.numLogical();
    std::vector<std::uint8_t> zeros(
        flash_.storesData() ? geom_.pageSize : 0, 0);

    if (placement == Placement::Striped) {
        for (std::uint64_t p = 0; p < pages; ++p) {
            const SegmentId seg = space_.physOf(
                static_cast<std::uint32_t>(p % segs));
            const FlashPageAddr addr =
                flash_.appendPage(seg, LogicalPageId(p), zeros);
            mmu_.mapToFlash(LogicalPageId(p), addr);
        }
        return;
    }

    // Sequential and Aged place an even run of consecutive logical
    // pages in each segment.
    const std::uint64_t cap = geom_.pagesPerSegment().value();
    const std::uint64_t share = (pages + segs - 1) / segs;
    std::uint64_t next = 0;
    for (std::uint32_t s = 0; s < segs; ++s) {
        const std::uint64_t here =
            std::min(share, pages - std::min(pages, next));
        const SegmentId phys = space_.physOf(s);
        const bool aged = placement == Placement::Aged &&
                          aged_stride > 0 &&
                          s % aged_stride != aged_stride - 1;
        const std::uint64_t dead = aged ? cap - here : 0;
        // Interleave the dead filler slots evenly between the live
        // pages, approximating a segment that has seen scattered
        // copy-on-write invalidations.
        const std::uint64_t total = here + dead;
        std::uint64_t placed = 0;
        for (std::uint64_t i = 0; i < total; ++i) {
            if ((i + 1) * here / total > placed) {
                const LogicalPageId page(next + placed);
                const FlashPageAddr addr =
                    flash_.appendPage(phys, page, zeros);
                mmu_.mapToFlash(page, addr);
                ++placed;
            } else {
                // A slot that was programmed and later invalidated:
                // append under a scratch owner, then kill it.
                const FlashPageAddr addr =
                    flash_.appendPage(phys, LogicalPageId(0), zeros);
                flash_.invalidatePage(addr);
            }
        }
        next += here;
    }
}

void
Controller::checkRange(Addr addr, std::size_t len) const
{
    if (addr + len > size())
        ENVY_FATAL("controller: host access [", addr, ", ", addr + len,
                   ") beyond the ", size(), "-byte array");
}

Controller::AccessOutcome
Controller::read(Addr addr, std::span<std::uint8_t> out)
{
    if (concurrent_)
        return readConcurrent(addr, out);
    MutexLock lock(mu_);
    checkRange(addr, out.size());
    AccessOutcome outcome;
    std::size_t done = 0;
    while (done < out.size()) {
        const Addr a = addr + done;
        const LogicalPageId page = pageOf(a);
        const std::uint32_t off =
            static_cast<std::uint32_t>(a % geom_.pageSize);
        const std::size_t n = std::min<std::size_t>(
            out.size() - done, geom_.pageSize - off);
        ++statHostReads;
        metHostReads.add();

        const PageTable::Location loc = mmu_.lookup(page);
        switch (loc.kind) {
          case PageTable::LocKind::Sram:
            outcome.hitSram = true;
            if (flash_.storesData()) {
                // as_const: a read must not dirty the slot for the
                // persist layer's SRAM tracking.
                auto src = std::as_const(buffer_).slotData(loc.sramSlot);
                std::copy_n(src.begin() + off, n, out.begin() + done);
            }
            break;
          case PageTable::LocKind::Flash:
            if (flash_.storesData()) {
                if (off == 0 && n == geom_.pageSize) {
                    // Whole aligned page: land the wide-path read in
                    // the caller's buffer, no bounce through scratch.
                    flash_.readPage(loc.flash, out.subspan(done, n));
                } else {
                    flash_.readPage(loc.flash, scratch_);
                    std::copy_n(scratch_.begin() + off, n,
                                out.begin() + done);
                }
            }
            break;
          case PageTable::LocKind::Unmapped:
            // Never-written space reads as zeroes.
            std::fill_n(out.begin() + done, n, 0);
            break;
        }
        done += n;
    }
    return outcome;
}

bool
Controller::probeRead(Addr addr)
{
    checkRange(addr, 1);
    ++statHostReads;
    metHostReads.add();
    const std::uint64_t misses = mmu_.statMisses.value();
    mmu_.lookup(pageOf(addr));
    return mmu_.statMisses.value() != misses;
}

BufferSlotId
Controller::cowCore(LogicalPageId page, const PageTable::Location &loc,
                    AccessOutcome &outcome)
{
    std::uint64_t origin;
    if (loc.kind == PageTable::LocKind::Flash) {
        const std::uint32_t seg = space_.logOf(loc.flash.segment);
        ENVY_ASSERT(seg != SegmentSpace::noLogical,
                    "controller: live page on the reserve segment");
        origin = policy_.originTag(seg);
    } else {
        origin = policy_.defaultOrigin(page);
    }

    const BufferSlotId slot = buffer_.push(page, origin);
    if (flash_.storesData()) {
        auto dst = buffer_.slotData(slot);
        if (loc.kind == PageTable::LocKind::Flash)
            flash_.readPage(loc.flash, dst);
        else
            std::fill(dst.begin(), dst.end(), 0);
    }
    ENVY_CRASH_POINT("ctl.cow.after_push");
    // The page table swing makes the new copy visible atomically...
    mmu_.mapToSram(page, slot);
    ENVY_CRASH_POINT("ctl.cow.after_map");
    // ...then the stale flash copy is invalidated — or kept as a
    // pinned shadow when a transaction wants rollback ability (§6).
    if (loc.kind == PageTable::LocKind::Flash) {
        if (cowShadowHook && cowShadowHook(page, loc.flash))
            flash_.convertToShadow(loc.flash);
        else
            flash_.invalidatePage(loc.flash);
    }
    ENVY_CRASH_POINT("ctl.cow.done");

    outcome.cow = true;
    ++statCows;
    metCows.add();
    ENVY_TRACE("ctl.cow", obs::tv("page", page.value()),
               obs::tv("slot", slot.value()),
               obs::tv("stalled_flushes", outcome.foregroundFlushes));
    return slot;
}

BufferSlotId
Controller::copyOnWrite(LogicalPageId page,
                        const PageTable::Location &stale_loc,
                        AccessOutcome &outcome)
{
    // Make room first: a full buffer stalls the host behind a flush
    // (and possibly a clean) — this is the latency cliff of Fig 15.
    PageTable::Location loc = stale_loc;
    while (buffer_.full()) {
        outcome.deviceBusy += flushOneLocked();
        ++outcome.foregroundFlushes;
        ++statForegroundFlushes;
        metForegroundFlushes.add();
        // Cleaning may have relocated the page we are copying.
        loc = mmu_.lookup(page);
    }
    return cowCore(page, loc, outcome);
}

Controller::AccessOutcome
Controller::write(Addr addr, std::span<const std::uint8_t> in)
{
    if (concurrent_)
        return writeConcurrent(addr, in);
    MutexLock lock(mu_);
    checkRange(addr, in.size());
    AccessOutcome outcome;
    std::size_t done = 0;
    while (done < in.size()) {
        const Addr a = addr + done;
        const LogicalPageId page = pageOf(a);
        const std::uint32_t off =
            static_cast<std::uint32_t>(a % geom_.pageSize);
        const std::size_t n = std::min<std::size_t>(
            in.size() - done, geom_.pageSize - off);
        ++statHostWrites;
        metHostWrites.add();

        const PageTable::Location loc = mmu_.lookup(page);
        BufferSlotId slot;
        if (loc.kind == PageTable::LocKind::Sram) {
            slot = loc.sramSlot;
            outcome.hitSram = true;
            ++statBufferHits;
            metBufferHits.add();
        } else {
            slot = copyOnWrite(page, loc, outcome);
        }
        if (flash_.storesData()) {
            auto dst = buffer_.slotData(slot);
            std::copy_n(in.begin() + done, n, dst.begin() + off);
        }
        done += n;
    }

    if (autoDrain_) {
        while (buffer_.aboveThreshold())
            flushOneLocked();
    }
    return outcome;
}

Tick
Controller::flushOne()
{
    if (concurrent_) {
        ExclusiveLock s(structMu_);
        if (buffer_.empty())
            return 0;
        bool no_room = false;
        return flushTailCore(false, &no_room);
    }
    MutexLock lock(mu_);
    return flushOneLocked();
}

Tick
Controller::flushOneLocked()
{
    bool no_room = false;
    return flushTailCore(false, &no_room);
}

Tick
Controller::flushTailCore(bool peek_only, bool *no_room)
{
    const WriteBuffer::TailInfo tail = buffer_.tail();
    // Thread-local cleaner time so inline cleaning is attributed to
    // the flushing thread (identical to the global delta in serial
    // mode; background cleaners keep their own clock).
    const Tick clean_busy0 = Cleaner::threadBusyTime();

    // Hold the tail slot's data stripe across [read data, program,
    // map swing, pop]: a concurrent hit-writer revalidates the slot
    // owner under the same stripe, so its bytes either land before
    // the program reads the slot or it observes the pop and retries
    // its translation.  Uncontended (and harmless) in serial mode.
    MutexLock stripe(buffer_.slotStripe(tail.slot));

    std::span<const std::uint8_t> data;
    if (flash_.storesData())
        data = std::as_const(buffer_).slotData(tail.slot);

    // A program can fail out of spec (§5.1: the status register
    // reports it); the slot is then retired and the page retried in
    // the next usable slot.  The policy is re-consulted each attempt
    // because a retirement may leave the destination without free
    // slots, forcing a clean.
    FlashPageAddr addr;
    SegmentId phys;
    for (;;) {
        std::uint32_t dest;
        if (peek_only) {
            // Concurrent fast path: only a destination that already
            // has room; cleaning belongs to the background pool.
            dest = policy_.peekDestination(tail.origin);
            if (dest == CleaningPolicy::noSegment) {
                *no_room = true;
                return 0;
            }
        } else {
            dest = policy_.flushDestination(tail.origin);
        }
        phys = space_.physOf(dest);
        ENVY_ASSERT(flash_.freeSlots(phys) > PageCount(0),
                    "controller: policy returned a full flush "
                    "destination");
        ENVY_CRASH_POINT("ctl.flush.before_program");
        const FlashArray::AppendResult res =
            flash_.tryAppendPage(phys, tail.logical, data);
        if (!res.failed) {
            addr = res.addr;
            break;
        }
        ++statFlushRetries;
        metFlushRetries.add();
        ENVY_CRASH_POINT("ctl.flush.after_program_failure");
    }
    ENVY_CRASH_POINT("ctl.flush.after_program");
    mmu_.mapToFlash(tail.logical, addr);
    ENVY_CRASH_POINT("ctl.flush.after_map");
    buffer_.popTail();
    space_.noteFlush();
    if (peek_only)
        policy_.noteFlush(tail.origin);
    ENVY_CRASH_POINT("ctl.flush.done");

    const Tick program = flash_.timing().programTimeAfter(
        flash_.eraseCycles(phys));
    const Tick busy =
        program + (Cleaner::threadBusyTime() - clean_busy0);
    tlDeviceBusy_ += busy;
    metFlushTicks.record(busy);
    ENVY_TRACE("ctl.flush", obs::tv("page", tail.logical.value()),
               obs::tv("segment", phys.value()),
               obs::tv("ticks", busy));
    return busy;
}

void
Controller::flushAll()
{
    if (concurrent_) {
        flushAllConcurrent();
        return;
    }
    MutexLock lock(mu_);
    while (!buffer_.empty())
        flushOneLocked();
}

// ---------------------------------------------------------------
// PR 8 concurrent mode.  Lock order: shard -> structMu_ -> buffer
// stripe -> component mutexes; see the lock-order table in
// docs/INTERNALS.md.

void
Controller::flushAllConcurrent()
{
    for (;;) {
        ExclusiveLock s(structMu_);
        if (buffer_.empty())
            return;
        bool no_room = false;
        flushTailCore(false, &no_room);
    }
}

void
Controller::drainOpportunistic()
{
    while (buffer_.aboveThreshold()) {
        {
            ExclusiveLock s(structMu_);
            if (!buffer_.aboveThreshold())
                return;
            bool no_room = false;
            flushTailCore(true, &no_room);
            if (!no_room)
                continue;
        }
        // No ready destination: this is the cleaners' cue, not a
        // reason to stall — the buffer still has head room.
        if (backpressureHook)
            backpressureHook();
        return;
    }
}

void
Controller::makeRoomBlocking(AccessOutcome &outcome)
{
    // Counted-wait backpressure (the paper's Fig 15 latency cliff,
    // made observable): wait for the cleaner pool to make room, and
    // only fall back to a synchronous inline clean when it cannot.
    constexpr int maxWaits = 4;
    for (int attempt = 0;; ++attempt) {
        {
            ExclusiveLock s(structMu_);
            if (!buffer_.full())
                return; // someone else made room
            bool no_room = false;
            const Tick busy = flushTailCore(true, &no_room);
            if (!no_room) {
                outcome.deviceBusy += busy;
                ++outcome.foregroundFlushes;
                ++statForegroundFlushes;
                metForegroundFlushes.add();
                notifyRoom();
                return;
            }
        }
        if (numCleaners_ == 0 || attempt >= maxWaits)
            break;
        metBackpressureWaits.add();
        ENVY_TRACE("ctl.backpressure", obs::tv("attempt", attempt));
        if (backpressureHook)
            backpressureHook();
        MutexLock wait(waitMu_);
        roomCv_.wait_for(wait, std::chrono::milliseconds(2));
    }

    // Last-resort slow path: clean inline on this thread.
    ExclusiveLock s(structMu_);
    if (!buffer_.full())
        return;
    bool no_room = false;
    outcome.deviceBusy += flushTailCore(false, &no_room);
    ++outcome.foregroundFlushes;
    ++statForegroundFlushes;
    metForegroundFlushes.add();
    notifyRoom();
}

bool
Controller::hitWriteLocked(LogicalPageId page, BufferSlotId slot,
                           std::span<const std::uint8_t> in,
                           std::uint32_t off, AccessOutcome &outcome)
{
    MutexLock stripe(buffer_.slotStripe(slot));
    // Revalidate under the stripe: the flusher holds it across
    // program + pop, so an owner match proves the slot still carries
    // this page's live copy.  Only this thread can COW the page (we
    // hold its shard lock).
    if (buffer_.slotOwner(slot) != page)
        return false; // recycled since the lookup; retranslate
    outcome.hitSram = true;
    ++statBufferHits;
    metBufferHits.add();
    if (flash_.storesData()) {
        auto dst = buffer_.slotData(slot);
        std::copy(in.begin(), in.end(), dst.begin() + off);
    }
    return true;
}

void
Controller::writePageConcurrent(LogicalPageId page,
                                std::span<const std::uint8_t> in,
                                std::uint32_t off,
                                AccessOutcome &outcome)
{
    for (;;) {
        const PageTable::Location loc = mmu_.lookup(page);
        if (loc.kind == PageTable::LocKind::Sram) {
            bool hit;
            if (persistentConcurrent_) {
                // Shared structural lock across the slot mutation:
                // the commit pipeline captures dirty SRAM under the
                // exclusive side, so a capture never observes half
                // of this write (lock order: shard -> structMu_ ->
                // stripe, same as the flusher).
                SharedLock journalBarrier(structMu_);
                hit = hitWriteLocked(page, loc.sramSlot, in, off,
                                     outcome);
            } else {
                hit = hitWriteLocked(page, loc.sramSlot, in, off,
                                     outcome);
            }
            if (hit)
                return;
            continue;
        }
        if (buffer_.full()) {
            makeRoomBlocking(outcome);
            continue;
        }
        ExclusiveLock s(structMu_);
        if (buffer_.full())
            continue; // filled while we took the lock; retry
        // Re-translate under the structural lock: a cleaner may have
        // relocated the flash copy since the unlocked lookup.
        const PageTable::Location cur = mmu_.lookup(page);
        if (cur.kind == PageTable::LocKind::Sram)
            continue; // cannot happen while we hold the shard lock
        const BufferSlotId slot = cowCore(page, cur, outcome);
        // Safe without the stripe: flushers need structMu_, and no
        // other writer holds this page's shard lock.
        if (flash_.storesData()) {
            auto dst = buffer_.slotData(slot);
            std::copy(in.begin(), in.end(), dst.begin() + off);
        }
        return;
    }
}

Controller::AccessOutcome
Controller::writeConcurrent(Addr addr, std::span<const std::uint8_t> in)
{
    checkRange(addr, in.size());
    AccessOutcome outcome;
    std::size_t done = 0;
    while (done < in.size()) {
        const Addr a = addr + done;
        const LogicalPageId page = pageOf(a);
        const std::uint32_t off =
            static_cast<std::uint32_t>(a % geom_.pageSize);
        const std::size_t n = std::min<std::size_t>(
            in.size() - done, geom_.pageSize - off);
        ++statHostWrites;
        metHostWrites.add();
        {
            ShardLock shard(shardMuFor(page));
            writePageConcurrent(page, in.subspan(done, n), off,
                                outcome);
        }
        done += n;
    }

    if (autoDrain_)
        drainOpportunistic();
    return outcome;
}

Controller::AccessOutcome
Controller::readConcurrent(Addr addr, std::span<std::uint8_t> out)
{
    // Bounce buffer for sub-page flash reads; thread-local because
    // concurrent readers must not share the serial-mode scratch_.
    static thread_local std::vector<std::uint8_t> tl_scratch;

    checkRange(addr, out.size());
    AccessOutcome outcome;
    std::size_t done = 0;
    while (done < out.size()) {
        const Addr a = addr + done;
        const LogicalPageId page = pageOf(a);
        const std::uint32_t off =
            static_cast<std::uint32_t>(a % geom_.pageSize);
        const std::size_t n = std::min<std::size_t>(
            out.size() - done, geom_.pageSize - off);
        ++statHostReads;
        metHostReads.add();

        ShardLock shard(shardMuFor(page));
        for (;;) {
            const PageTable::Location loc = mmu_.lookup(page);
            if (loc.kind == PageTable::LocKind::Unmapped) {
                std::fill_n(out.begin() + done, n, 0);
                break;
            }
            if (loc.kind == PageTable::LocKind::Sram) {
                MutexLock stripe(buffer_.slotStripe(loc.sramSlot));
                if (buffer_.slotOwner(loc.sramSlot) != page)
                    continue; // recycled; retranslate
                outcome.hitSram = true;
                if (flash_.storesData()) {
                    auto src =
                        std::as_const(buffer_).slotData(loc.sramSlot);
                    std::copy_n(src.begin() + off, n,
                                out.begin() + done);
                }
                break;
            }
            // Flash: a shared structural lock keeps cleaners (which
            // relocate and erase under the exclusive side) away while
            // the bank read runs.
            SharedLock s(structMu_);
            const PageTable::Location cur = mmu_.lookup(page);
            if (cur.kind != PageTable::LocKind::Flash ||
                !(cur.flash == loc.flash))
                continue; // moved before we got the lock; retry
            if (flash_.storesData()) {
                if (off == 0 && n == geom_.pageSize) {
                    flash_.readPage(cur.flash, out.subspan(done, n));
                } else {
                    if (tl_scratch.size() < geom_.pageSize)
                        tl_scratch.resize(geom_.pageSize);
                    flash_.readPage(cur.flash, tl_scratch);
                    std::copy_n(tl_scratch.begin() + off, n,
                                out.begin() + done);
                }
            }
            break;
        }
        done += n;
    }
    return outcome;
}

} // namespace envy
