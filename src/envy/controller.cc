#include "envy/controller.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "faults/crash_point.hh"
#include "obs/trace.hh"

namespace envy {

namespace {

// Flush-latency buckets in device ticks (ns): flush alone is a few
// hundred µs; a flush that triggered cleaning or an erase lands in
// the ms decades.
std::vector<std::uint64_t>
flushTickEdges()
{
    return {100'000, 300'000, 1'000'000, 3'000'000, 10'000'000,
            30'000'000, 100'000'000, 300'000'000, 1'000'000'000};
}

} // namespace

Controller::Controller(const Geometry &geom, FlashArray &flash,
                       Mmu &mmu, WriteBuffer &buffer,
                       SegmentSpace &space, Cleaner &cleaner,
                       CleaningPolicy &policy, bool auto_drain,
                       StatGroup *parent, obs::MetricsRegistry *metrics)
    : StatGroup("controller", parent),
      statHostReads(this, "hostReads", "host read accesses"),
      statHostWrites(this, "hostWrites", "host write accesses"),
      statCows(this, "cows", "copy-on-write operations"),
      statBufferHits(this, "bufferHits",
                     "writes absorbed by a resident buffer page"),
      statForegroundFlushes(this, "foregroundFlushes",
                            "flushes a host write had to wait for"),
      statFlushRetries(this, "flushRetries",
                       "flush programs retried after a spec-failure"),
      metHostReads(obs::counterOf(metrics, "ctl.host_reads", "accesses",
                                  "host read accesses")),
      metHostWrites(obs::counterOf(metrics, "ctl.host_writes",
                                   "accesses", "host write accesses")),
      metCows(obs::counterOf(metrics, "ctl.cows", "pages",
                             "copy-on-write operations")),
      metBufferHits(obs::counterOf(metrics, "ctl.buffer_hits",
                                   "accesses",
                                   "writes absorbed by a resident "
                                   "buffer page")),
      metForegroundFlushes(obs::counterOf(metrics,
                                          "ctl.foreground_flushes",
                                          "flushes",
                                          "flushes a host write had to "
                                          "wait for")),
      metFlushRetries(obs::counterOf(metrics, "ctl.flush_retries",
                                     "programs",
                                     "flush programs retried after a "
                                     "spec-failure")),
      metFlushTicks(obs::histogramOf(metrics, "ctl.flush_ticks", "ns",
                                     "device time consumed per flush, "
                                     "cleaning included",
                                     flushTickEdges())),
      geom_(geom),
      flash_(flash),
      mmu_(mmu),
      buffer_(buffer),
      space_(space),
      cleaner_(cleaner),
      policy_(policy),
      autoDrain_(auto_drain),
      scratch_(flash.storesData() ? geom.pageSize : 0)
{
    policy_.attach(space_, cleaner_);
}

void
Controller::populate(Placement placement, std::uint32_t aged_stride)
{
    MutexLock lock(mu_);
    const std::uint64_t pages = geom_.effectiveLogicalPages().value();
    const std::uint32_t segs = space_.numLogical();
    std::vector<std::uint8_t> zeros(
        flash_.storesData() ? geom_.pageSize : 0, 0);

    if (placement == Placement::Striped) {
        for (std::uint64_t p = 0; p < pages; ++p) {
            const SegmentId seg = space_.physOf(
                static_cast<std::uint32_t>(p % segs));
            const FlashPageAddr addr =
                flash_.appendPage(seg, LogicalPageId(p), zeros);
            mmu_.mapToFlash(LogicalPageId(p), addr);
        }
        return;
    }

    // Sequential and Aged place an even run of consecutive logical
    // pages in each segment.
    const std::uint64_t cap = geom_.pagesPerSegment().value();
    const std::uint64_t share = (pages + segs - 1) / segs;
    std::uint64_t next = 0;
    for (std::uint32_t s = 0; s < segs; ++s) {
        const std::uint64_t here =
            std::min(share, pages - std::min(pages, next));
        const SegmentId phys = space_.physOf(s);
        const bool aged = placement == Placement::Aged &&
                          aged_stride > 0 &&
                          s % aged_stride != aged_stride - 1;
        const std::uint64_t dead = aged ? cap - here : 0;
        // Interleave the dead filler slots evenly between the live
        // pages, approximating a segment that has seen scattered
        // copy-on-write invalidations.
        const std::uint64_t total = here + dead;
        std::uint64_t placed = 0;
        for (std::uint64_t i = 0; i < total; ++i) {
            if ((i + 1) * here / total > placed) {
                const LogicalPageId page(next + placed);
                const FlashPageAddr addr =
                    flash_.appendPage(phys, page, zeros);
                mmu_.mapToFlash(page, addr);
                ++placed;
            } else {
                // A slot that was programmed and later invalidated:
                // append under a scratch owner, then kill it.
                const FlashPageAddr addr =
                    flash_.appendPage(phys, LogicalPageId(0), zeros);
                flash_.invalidatePage(addr);
            }
        }
        next += here;
    }
}

void
Controller::checkRange(Addr addr, std::size_t len) const
{
    if (addr + len > size())
        ENVY_FATAL("controller: host access [", addr, ", ", addr + len,
                   ") beyond the ", size(), "-byte array");
}

Controller::AccessOutcome
Controller::read(Addr addr, std::span<std::uint8_t> out)
{
    MutexLock lock(mu_);
    checkRange(addr, out.size());
    AccessOutcome outcome;
    std::size_t done = 0;
    while (done < out.size()) {
        const Addr a = addr + done;
        const LogicalPageId page = pageOf(a);
        const std::uint32_t off =
            static_cast<std::uint32_t>(a % geom_.pageSize);
        const std::size_t n = std::min<std::size_t>(
            out.size() - done, geom_.pageSize - off);
        ++statHostReads;
        metHostReads.add();

        const PageTable::Location loc = mmu_.lookup(page);
        switch (loc.kind) {
          case PageTable::LocKind::Sram:
            outcome.hitSram = true;
            if (flash_.storesData()) {
                // as_const: a read must not dirty the slot for the
                // persist layer's SRAM tracking.
                auto src = std::as_const(buffer_).slotData(loc.sramSlot);
                std::copy_n(src.begin() + off, n, out.begin() + done);
            }
            break;
          case PageTable::LocKind::Flash:
            if (flash_.storesData()) {
                if (off == 0 && n == geom_.pageSize) {
                    // Whole aligned page: land the wide-path read in
                    // the caller's buffer, no bounce through scratch.
                    flash_.readPage(loc.flash, out.subspan(done, n));
                } else {
                    flash_.readPage(loc.flash, scratch_);
                    std::copy_n(scratch_.begin() + off, n,
                                out.begin() + done);
                }
            }
            break;
          case PageTable::LocKind::Unmapped:
            // Never-written space reads as zeroes.
            std::fill_n(out.begin() + done, n, 0);
            break;
        }
        done += n;
    }
    return outcome;
}

bool
Controller::probeRead(Addr addr)
{
    checkRange(addr, 1);
    ++statHostReads;
    metHostReads.add();
    const std::uint64_t misses = mmu_.statMisses.value();
    mmu_.lookup(pageOf(addr));
    return mmu_.statMisses.value() != misses;
}

BufferSlotId
Controller::copyOnWrite(LogicalPageId page,
                        const PageTable::Location &stale_loc,
                        AccessOutcome &outcome)
{
    // Make room first: a full buffer stalls the host behind a flush
    // (and possibly a clean) — this is the latency cliff of Fig 15.
    PageTable::Location loc = stale_loc;
    while (buffer_.full()) {
        outcome.deviceBusy += flushOneLocked();
        ++outcome.foregroundFlushes;
        ++statForegroundFlushes;
        metForegroundFlushes.add();
        // Cleaning may have relocated the page we are copying.
        loc = mmu_.lookup(page);
    }

    std::uint64_t origin;
    if (loc.kind == PageTable::LocKind::Flash) {
        const std::uint32_t seg = space_.logOf(loc.flash.segment);
        ENVY_ASSERT(seg != SegmentSpace::noLogical,
                    "controller: live page on the reserve segment");
        origin = policy_.originTag(seg);
    } else {
        origin = policy_.defaultOrigin(page);
    }

    const BufferSlotId slot = buffer_.push(page, origin);
    if (flash_.storesData()) {
        auto dst = buffer_.slotData(slot);
        if (loc.kind == PageTable::LocKind::Flash)
            flash_.readPage(loc.flash, dst);
        else
            std::fill(dst.begin(), dst.end(), 0);
    }
    ENVY_CRASH_POINT("ctl.cow.after_push");
    // The page table swing makes the new copy visible atomically...
    mmu_.mapToSram(page, slot);
    ENVY_CRASH_POINT("ctl.cow.after_map");
    // ...then the stale flash copy is invalidated — or kept as a
    // pinned shadow when a transaction wants rollback ability (§6).
    if (loc.kind == PageTable::LocKind::Flash) {
        if (cowShadowHook && cowShadowHook(page, loc.flash))
            flash_.convertToShadow(loc.flash);
        else
            flash_.invalidatePage(loc.flash);
    }
    ENVY_CRASH_POINT("ctl.cow.done");

    outcome.cow = true;
    ++statCows;
    metCows.add();
    ENVY_TRACE("ctl.cow", obs::tv("page", page.value()),
               obs::tv("slot", slot.value()),
               obs::tv("stalled_flushes", outcome.foregroundFlushes));
    return slot;
}

Controller::AccessOutcome
Controller::write(Addr addr, std::span<const std::uint8_t> in)
{
    MutexLock lock(mu_);
    checkRange(addr, in.size());
    AccessOutcome outcome;
    std::size_t done = 0;
    while (done < in.size()) {
        const Addr a = addr + done;
        const LogicalPageId page = pageOf(a);
        const std::uint32_t off =
            static_cast<std::uint32_t>(a % geom_.pageSize);
        const std::size_t n = std::min<std::size_t>(
            in.size() - done, geom_.pageSize - off);
        ++statHostWrites;
        metHostWrites.add();

        const PageTable::Location loc = mmu_.lookup(page);
        BufferSlotId slot;
        if (loc.kind == PageTable::LocKind::Sram) {
            slot = loc.sramSlot;
            outcome.hitSram = true;
            ++statBufferHits;
            metBufferHits.add();
        } else {
            slot = copyOnWrite(page, loc, outcome);
        }
        if (flash_.storesData()) {
            auto dst = buffer_.slotData(slot);
            std::copy_n(in.begin() + done, n, dst.begin() + off);
        }
        done += n;
    }

    if (autoDrain_) {
        while (buffer_.aboveThreshold())
            flushOneLocked();
    }
    return outcome;
}

Tick
Controller::flushOne()
{
    MutexLock lock(mu_);
    return flushOneLocked();
}

Tick
Controller::flushOneLocked()
{
    const WriteBuffer::TailInfo tail = buffer_.tail();
    const Tick clean_busy0 = cleaner_.busyTime();

    std::span<const std::uint8_t> data;
    if (flash_.storesData())
        data = std::as_const(buffer_).slotData(tail.slot);

    // A program can fail out of spec (§5.1: the status register
    // reports it); the slot is then retired and the page retried in
    // the next usable slot.  The policy is re-consulted each attempt
    // because a retirement may leave the destination without free
    // slots, forcing a clean.
    FlashPageAddr addr;
    SegmentId phys;
    for (;;) {
        const std::uint32_t dest = policy_.flushDestination(tail.origin);
        phys = space_.physOf(dest);
        ENVY_ASSERT(flash_.freeSlots(phys) > PageCount(0),
                    "controller: policy returned a full flush "
                    "destination");
        ENVY_CRASH_POINT("ctl.flush.before_program");
        const FlashArray::AppendResult res =
            flash_.tryAppendPage(phys, tail.logical, data);
        if (!res.failed) {
            addr = res.addr;
            break;
        }
        ++statFlushRetries;
        metFlushRetries.add();
        ENVY_CRASH_POINT("ctl.flush.after_program_failure");
    }
    ENVY_CRASH_POINT("ctl.flush.after_program");
    mmu_.mapToFlash(tail.logical, addr);
    ENVY_CRASH_POINT("ctl.flush.after_map");
    buffer_.popTail();
    space_.noteFlush();
    ENVY_CRASH_POINT("ctl.flush.done");

    const Tick program = flash_.timing().programTimeAfter(
        flash_.eraseCycles(phys));
    const Tick busy = program + (cleaner_.busyTime() - clean_busy0);
    metFlushTicks.record(busy);
    ENVY_TRACE("ctl.flush", obs::tv("page", tail.logical.value()),
               obs::tv("segment", phys.value()),
               obs::tv("ticks", busy));
    return busy;
}

void
Controller::flushAll()
{
    MutexLock lock(mu_);
    while (!buffer_.empty())
        flushOneLocked();
}

} // namespace envy
