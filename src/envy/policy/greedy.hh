/**
 * @file
 * Greedy cleaning policy (paper §4.2).
 *
 * All flushes go to a single active segment.  When it fills, the
 * segment with the most invalidated space is cleaned and becomes the
 * new active segment.  Unlike Sprite LFS's greedy variant there is no
 * age sorting and only one segment is cleaned at a time (§4.1 explains
 * why: eNVy's segments are few and enormous).
 *
 * Under uniform access the policy degenerates to FIFO cleaning order
 * and performs well; with high locality every segment converges to the
 * same hot/cold mixture and the cost climbs (Fig 8).
 */

#ifndef ENVY_ENVY_POLICY_GREEDY_HH
#define ENVY_ENVY_POLICY_GREEDY_HH

#include "envy/policy/cleaning_policy.hh"

namespace envy {

class GreedyPolicy : public CleaningPolicy
{
  public:
    const char *name() const override { return "greedy"; }

    void attach(SegmentSpace &space, Cleaner &cleaner) override;
    std::uint32_t flushDestination(std::uint64_t origin_tag) override;
    std::uint64_t defaultOrigin(LogicalPageId page) const override;

    // PR 8 concurrent-mode hooks (FifoPolicy inherits these; only
    // pickVictim() differs).
    std::uint32_t peekDestination(std::uint64_t origin_tag) override;
    std::uint32_t backgroundClean(PageCount watermark) override;

  protected:
    /** Pick the next victim; greedy takes the most-invalidated. */
    virtual std::uint32_t pickVictim();

    SegmentSpace *space_ = nullptr;
    Cleaner *cleaner_ = nullptr;
    std::uint32_t active_ = 0;
};

} // namespace envy

#endif // ENVY_ENVY_POLICY_GREEDY_HH
