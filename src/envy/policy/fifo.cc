#include "envy/policy/fifo.hh"

#include "envy/segment_space.hh"

namespace envy {

void
FifoPolicy::attach(SegmentSpace &space, Cleaner &cleaner)
{
    GreedyPolicy::attach(space, cleaner);
    next_ = 0;
}

std::uint32_t
FifoPolicy::pickVictim()
{
    const std::uint32_t victim = next_;
    next_ = (next_ + 1) % space_->numLogical();
    return victim;
}

} // namespace envy
