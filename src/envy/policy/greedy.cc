#include "envy/policy/greedy.hh"

#include "common/logging.hh"
#include "envy/cleaner.hh"
#include "envy/segment_space.hh"

namespace envy {

void
GreedyPolicy::attach(SegmentSpace &space, Cleaner &cleaner)
{
    space_ = &space;
    cleaner_ = &cleaner;
    // Start filling the segment with the most room.
    active_ = 0;
    PageCount best;
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        if (space.freeSlots(l) > best) {
            best = space.freeSlots(l);
            active_ = l;
        }
    }
}

std::uint32_t
GreedyPolicy::flushDestination(std::uint64_t origin_tag)
{
    (void)origin_tag;
    if (space_->freeSlots(active_) > PageCount(0))
        return active_;

    // A fresh (never filled) segment with room is cheaper than any
    // clean; steady state never has one.
    std::uint32_t roomiest = active_;
    PageCount best;
    for (std::uint32_t l = 0; l < space_->numLogical(); ++l) {
        if (space_->freeSlots(l) > best) {
            best = space_->freeSlots(l);
            roomiest = l;
        }
    }
    if (best > PageCount(0)) {
        active_ = roomiest;
        return active_;
    }

    const std::uint32_t victim = pickVictim();
    ENVY_ASSERT(space_->invalidCount(victim) > PageCount(0) ||
                    space_->liveCount(victim) <
                        space_->segmentCapacity(),
                "policy: array is completely live; "
                "cleaning cannot make room");
    cleaner_->clean(victim, this);
    active_ = victim;
    return active_;
}

std::uint32_t
GreedyPolicy::pickVictim()
{
    std::uint32_t victim = 0;
    PageCount best;
    for (std::uint32_t l = 0; l < space_->numLogical(); ++l) {
        const PageCount inv = space_->invalidCount(l);
        if (inv >= best) {
            best = inv;
            victim = l;
        }
    }
    return victim;
}

std::uint64_t
GreedyPolicy::defaultOrigin(LogicalPageId page) const
{
    (void)page;
    return 0;
}

} // namespace envy
