#include "envy/policy/greedy.hh"

#include "common/logging.hh"
#include "envy/cleaner.hh"
#include "envy/segment_space.hh"

namespace envy {

void
GreedyPolicy::attach(SegmentSpace &space, Cleaner &cleaner)
{
    space_ = &space;
    cleaner_ = &cleaner;
    // Start filling the segment with the most room.  The index keeps
    // the historical scan's tie-break (first index wins; segment 0
    // when the whole array is full).
    active_ = space.roomiestLogical();
}

std::uint32_t
GreedyPolicy::flushDestination(std::uint64_t origin_tag)
{
    (void)origin_tag;
    if (space_->freeSlots(active_) > PageCount(0))
        return active_;

    // A fresh (never filled) segment with room is cheaper than any
    // clean; steady state never has one.
    if (space_->maxFreeSlots() > PageCount(0)) {
        active_ = space_->roomiestLogical();
        return active_;
    }

    const std::uint32_t victim = pickVictim();
    ENVY_ASSERT(space_->invalidCount(victim) > PageCount(0) ||
                    space_->liveCount(victim) <
                        space_->segmentCapacity(),
                "policy: array is completely live; "
                "cleaning cannot make room");
    cleaner_->clean(victim, this);
    active_ = victim;
    return active_;
}

std::uint32_t
GreedyPolicy::peekDestination(std::uint64_t origin_tag)
{
    (void)origin_tag;
    if (space_->freeSlots(active_) > PageCount(0))
        return active_;
    if (space_->maxFreeSlots() > PageCount(0))
        return space_->roomiestLogical();
    return noSegment;
}

std::uint32_t
GreedyPolicy::backgroundClean(PageCount watermark)
{
    // Whole-array watermark: clean ahead while total free space is
    // below it and cleaning can actually make room.
    const PageCount free =
        space_->freeInRange(0, space_->numLogical());
    if (free >= watermark)
        return noSegment;
    const std::uint32_t victim = pickVictim();
    if (space_->invalidCount(victim) == PageCount(0) &&
        space_->liveCount(victim) >= space_->segmentCapacity())
        return noSegment; // all-live victim: cleaning frees nothing
    cleaner_->clean(victim, this);
    active_ = victim;
    return victim;
}

std::uint32_t
GreedyPolicy::pickVictim()
{
    // Most invalidated wins; the index keeps the historical scan's
    // tie-break (last index wins; the last segment when nothing is
    // invalid anywhere).
    return space_->mostInvalidLogical();
}

std::uint64_t
GreedyPolicy::defaultOrigin(LogicalPageId page) const
{
    (void)page;
    return 0;
}

} // namespace envy
