#include "envy/policy/hybrid.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "envy/cleaner.hh"
#include "envy/segment_space.hh"

namespace envy {

HybridPolicy::HybridPolicy(std::uint32_t partition_size)
    : partitionSize_(partition_size)
{
    ENVY_ASSERT(partition_size > 0,
                "policy: partition size must be positive");
}

void
HybridPolicy::attach(SegmentSpace &space, Cleaner &cleaner)
{
    space_ = &space;
    cleaner_ = &cleaner;
    partitionSize_ = std::min(partitionSize_, space.numLogical());
    numPartitions_ =
        (space.numLogical() + partitionSize_ - 1) / partitionSize_;

    active_.assign(numPartitions_, 0);
    fifoNext_.assign(numPartitions_, 0);
    writes_.assign(numPartitions_, 1.0); // uniform prior
    sinceDecay_ = 0;
    decayPeriod_ = std::max<std::uint64_t>(
        4096,
        space.numLogical() * space.segmentCapacity().value() / 4);

    for (std::uint32_t p = 0; p < numPartitions_; ++p)
        active_[p] = firstSeg(p);
}

std::uint32_t
HybridPolicy::segsIn(std::uint32_t part) const
{
    const std::uint32_t first = firstSeg(part);
    return std::min(partitionSize_, space_->numLogical() - first);
}

std::uint64_t
HybridPolicy::partitionLive(std::uint32_t part) const
{
    const std::uint32_t first = firstSeg(part);
    return space_->liveInRange(first, first + segsIn(part)).value();
}

std::uint64_t
HybridPolicy::partitionCapacity(std::uint32_t part) const
{
    return std::uint64_t{segsIn(part)} *
           space_->segmentCapacity().value();
}

std::uint64_t
HybridPolicy::partitionFree(std::uint32_t part) const
{
    const std::uint32_t first = firstSeg(part);
    return space_->freeInRange(first, first + segsIn(part)).value();
}

std::uint32_t
HybridPolicy::divertTarget(std::uint32_t part) const
{
    if (space_->freeSlots(active_[part]) > PageCount(0))
        return active_[part];
    const std::uint32_t first = firstSeg(part);
    const std::uint32_t log_seg =
        space_->firstWithFreeInRange(first, first + segsIn(part));
    if (log_seg != SegmentSpace::noLogical)
        return log_seg;
    return active_[part]; // full; the cleaner will keep the page
}

std::uint32_t
HybridPolicy::flushDestination(std::uint64_t origin_tag)
{
    const auto origin = static_cast<std::uint32_t>(origin_tag);
    ENVY_ASSERT(origin < space_->numLogical(),
                "policy: bad origin tag");
    const std::uint32_t part = partitionOf(origin);

    writes_[part] += 1.0;
    if (++sinceDecay_ >= decayPeriod_) {
        for (double &w : writes_)
            w *= 0.5;
        sinceDecay_ = 0;
    }

    if (space_->freeSlots(active_[part]) > PageCount(0))
        return active_[part];

    // A not-yet-filled segment in the partition (fresh array) is
    // cheaper than cleaning.
    const std::uint32_t first = firstSeg(part);
    const std::uint32_t end = first + segsIn(part);
    std::uint32_t open = space_->firstWithFreeInRange(first, end);
    if (open != SegmentSpace::noLogical) {
        active_[part] = open;
        return open;
    }

    const std::uint32_t victim = cleanNext(part);
    active_[part] = victim;
    if (space_->freeSlots(victim) == PageCount(0)) {
        // The forced shed may have parked the room elsewhere in the
        // partition; find it.
        open = space_->firstWithFreeInRange(first, end);
        if (open != SegmentSpace::noLogical) {
            active_[part] = open;
            return open;
        }
        ENVY_PANIC("policy: clean of segment ", victim,
                   " left partition ", part, " with no room");
    }
    return victim;
}

std::uint32_t
HybridPolicy::peekDestination(std::uint64_t origin_tag)
{
    const auto origin = static_cast<std::uint32_t>(origin_tag);
    ENVY_ASSERT(origin < space_->numLogical(),
                "policy: bad origin tag");
    const std::uint32_t part = partitionOf(origin);
    if (space_->freeSlots(active_[part]) > PageCount(0))
        return active_[part];
    const std::uint32_t first = firstSeg(part);
    const std::uint32_t open =
        space_->firstWithFreeInRange(first, first + segsIn(part));
    if (open != SegmentSpace::noLogical)
        return open;
    return noSegment;
}

void
HybridPolicy::noteFlush(std::uint64_t origin_tag)
{
    const auto origin = static_cast<std::uint32_t>(origin_tag);
    const std::uint32_t part = partitionOf(origin);
    writes_[part] += 1.0;
    if (++sinceDecay_ >= decayPeriod_) {
        for (double &w : writes_)
            w *= 0.5;
        sinceDecay_ = 0;
    }
}

std::uint32_t
HybridPolicy::backgroundClean(PageCount watermark)
{
    // Clean ahead in the partition that is furthest below the free
    // watermark — weighted by write rate so hot partitions get the
    // cleaner's attention first.
    std::uint32_t worst = noSegment;
    double worst_score = 0.0;
    for (std::uint32_t p = 0; p < numPartitions_; ++p) {
        const std::uint64_t free = partitionFree(p);
        if (free >= watermark.value())
            continue;
        // A partition that is all-live cannot be cleaned into room.
        if (partitionLive(p) >= partitionCapacity(p))
            continue;
        const double deficit =
            static_cast<double>(watermark.value() - free);
        const double score = deficit * writes_[p];
        if (worst == noSegment || score > worst_score) {
            worst = p;
            worst_score = score;
        }
    }
    if (worst == noSegment)
        return noSegment;
    const std::uint32_t victim = cleanNext(worst);
    active_[worst] = victim;
    return victim;
}

std::uint32_t
HybridPolicy::cleanNext(std::uint32_t part)
{
    const std::uint32_t victim =
        firstSeg(part) + fifoNext_[part] % segsIn(part);
    fifoNext_[part] = (fifoNext_[part] + 1) % segsIn(part);
    planRedistribution(part, victim);
    cleaner_->clean(victim, this);
    return victim;
}

double
HybridPolicy::targetLive(std::uint32_t part) const
{
    // Same sqrt(write-rate) free-space allocation as locality
    // gathering (see locality_gathering.cc), at partition
    // granularity.
    double sum_sqrt = 0.0;
    for (std::uint32_t p = 0; p < numPartitions_; ++p)
        sum_sqrt += std::sqrt(writes_[p]) * segsIn(p);

    double total_live = 0.0, total_pages = 0.0;
    for (std::uint32_t p = 0; p < numPartitions_; ++p) {
        total_live += static_cast<double>(partitionLive(p));
        total_pages += static_cast<double>(partitionCapacity(p));
    }
    const double total_free = total_pages - total_live;

    const double cap = static_cast<double>(partitionCapacity(part));
    const double share =
        std::sqrt(writes_[part]) * segsIn(part) / sum_sqrt;
    const double want_free = std::min(total_free * share, cap * 0.9);
    return std::max(cap - want_free, 0.0);
}

void
HybridPolicy::planRedistribution(std::uint32_t part,
                                 std::uint32_t victim)
{
    const double seg_cap = asDouble(space_->segmentCapacity());
    const double victim_live = asDouble(space_->liveCount(victim));
    const double live = static_cast<double>(partitionLive(part));

    planVictim_ = victim;
    planPart_ = part;
    shedCold_ = shedHot_ = pullCold_ = pullHot_ = 0;
    shedColdPart_ = shedHotPart_ = part;

    const double max_shift = seg_cap * maxShiftFraction;
    double delta = std::clamp(live - targetLive(part), -max_shift,
                              max_shift);

    // The cleaned segment becomes the partition's active segment: it
    // must come out of the clean with room for flush traffic.
    const double min_free = std::max(seg_cap / 64.0, 4.0);
    const double other_free =
        static_cast<double>(partitionFree(part)) -
        (seg_cap - victim_live);
    const double forced = victim_live - (seg_cap - min_free) -
                          std::max(other_free, 0.0);
    const double dead_band = std::max(seg_cap / 64.0, 4.0);
    if (std::abs(delta) < dead_band && forced <= 0.0)
        return;
    delta = std::max(delta, forced);

    // Direction of the deficit/surplus relative to the allocator's
    // targets (see locality_gathering.cc for why 50/50 circulates).
    double below_need = 0.0, above_need = 0.0;
    double below_surplus = 0.0, above_surplus = 0.0;
    for (std::uint32_t p = 0; p < numPartitions_; ++p) {
        if (p == part)
            continue;
        const double gap =
            targetLive(p) - static_cast<double>(partitionLive(p));
        if (gap > 0.0)
            (p < part ? below_need : above_need) += gap;
        else
            (p < part ? below_surplus : above_surplus) -= gap;
    }

    if (delta > 0.0) {
        auto shed = static_cast<std::uint64_t>(delta);
        shed = std::min<std::uint64_t>(
            shed, static_cast<std::uint64_t>(victim_live));
        const double need = below_need + above_need;
        shedHot_ = need > 0.0
                       ? static_cast<std::uint64_t>(
                             static_cast<double>(shed) *
                                 (below_need / need))
                       : shed / 2;
        shedCold_ = shed - shedHot_;
        shedHotPart_ = findPartitionRoom(part, -1);
        shedColdPart_ = findPartitionRoom(part, +1);
        if (shedHotPart_ == part) {
            shedCold_ += shedHot_;
            shedHot_ = 0;
        }
        if (shedColdPart_ == part) {
            if (shedHotPart_ != part)
                shedHot_ += shedCold_;
            shedCold_ = 0;
        }
        if (shedHotPart_ != part)
            shedHot_ = std::min(
                shedHot_, partitionFree(shedHotPart_) - 1);
        if (shedColdPart_ != part)
            shedCold_ = std::min(
                shedCold_, partitionFree(shedColdPart_) - 1);
    } else {
        auto pull = static_cast<std::uint64_t>(-delta);
        const double surplus = below_surplus + above_surplus;
        pullCold_ = surplus > 0.0
                        ? static_cast<std::uint64_t>(
                              static_cast<double>(pull) *
                                  (below_surplus / surplus))
                        : pull / 2;
        pullHot_ = pull - pullCold_;
        if (part == 0)
            pullCold_ = 0;
        if (part + 1 >= numPartitions_)
            pullHot_ = 0;
    }
}

std::uint32_t
HybridPolicy::findPartitionRoom(std::uint32_t part, int dir) const
{
    std::int64_t p = std::int64_t(part) + dir;
    while (p >= 0 && p < std::int64_t(numPartitions_)) {
        if (partitionFree(static_cast<std::uint32_t>(p)) > 1)
            return static_cast<std::uint32_t>(p);
        p += dir;
    }
    return part;
}

std::uint32_t
HybridPolicy::divert(std::uint32_t log_seg, std::uint64_t idx,
                     PageCount total)
{
    if (log_seg != planVictim_)
        return log_seg;
    const std::uint64_t total_v = total.value();
    if (idx < shedCold_ && shedColdPart_ != planPart_)
        return divertTarget(shedColdPart_);
    if (shedHot_ > 0 && shedHotPart_ != planPart_ &&
        idx >= total_v - std::min(shedHot_, total_v))
        return divertTarget(shedHotPart_);
    return log_seg;
}

void
HybridPolicy::onCleaned(std::uint32_t log_seg)
{
    if (log_seg != planVictim_)
        return;
    const std::uint32_t part = planPart_;
    const std::uint64_t room = space_->freeSlots(log_seg).value();
    std::uint64_t budget = room > 1 ? room - 1 : 0;

    // Pull from the neighbouring partitions' oldest (next-victim)
    // segments in temperature-preserving directions.
    if (pullHot_ > 0 && part + 1 < numPartitions_ && budget > 0) {
        const std::uint32_t src = firstSeg(part + 1) +
                                  fifoNext_[part + 1] %
                                      segsIn(part + 1);
        const std::uint64_t n = std::min(pullHot_, budget);
        budget -=
            cleaner_->movePages(src, log_seg, true, PageCount(n)).value();
    }
    if (pullCold_ > 0 && part > 0 && budget > 0) {
        const std::uint32_t src =
            firstSeg(part - 1) + fifoNext_[part - 1] % segsIn(part - 1);
        const std::uint64_t n = std::min(pullCold_, budget);
        cleaner_->movePages(src, log_seg, false, PageCount(n));
    }
    shedCold_ = shedHot_ = pullCold_ = pullHot_ = 0;
}

std::uint64_t
HybridPolicy::defaultOrigin(LogicalPageId page) const
{
    return page.value() % space_->numLogical();
}

} // namespace envy
