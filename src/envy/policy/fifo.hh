/**
 * @file
 * FIFO cleaning policy (paper §4.2, §4.4).
 *
 * Segments are cleaned strictly in rotation.  §4.2 observes that the
 * greedy policy *behaves* like FIFO in steady state for both uniform
 * and high-locality workloads; the hybrid scheme therefore uses plain
 * FIFO inside each partition "because it is simpler to implement and
 * produces the same cleaning cost" (§4.4).
 */

#ifndef ENVY_ENVY_POLICY_FIFO_HH
#define ENVY_ENVY_POLICY_FIFO_HH

#include "envy/policy/greedy.hh"

namespace envy {

class FifoPolicy : public GreedyPolicy
{
  public:
    const char *name() const override { return "fifo"; }

    void attach(SegmentSpace &space, Cleaner &cleaner) override;

  protected:
    std::uint32_t pickVictim() override;

  private:
    std::uint32_t next_ = 0;
};

} // namespace envy

#endif // ENVY_ENVY_POLICY_FIFO_HH
