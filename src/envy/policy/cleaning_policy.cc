#include "envy/policy/cleaning_policy.hh"

#include "common/logging.hh"
#include "envy/policy/fifo.hh"
#include "envy/policy/greedy.hh"
#include "envy/policy/hybrid.hh"
#include "envy/policy/locality_gathering.hh"

namespace envy {

void
CleaningPolicy::attach(SegmentSpace &space, Cleaner &cleaner)
{
    (void)space;
    (void)cleaner;
}

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Greedy:
        return "greedy";
      case PolicyKind::Fifo:
        return "fifo";
      case PolicyKind::LocalityGathering:
        return "locality-gathering";
      case PolicyKind::Hybrid:
        return "hybrid";
    }
    return "unknown";
}

std::unique_ptr<CleaningPolicy>
makePolicy(PolicyKind kind, std::uint32_t partition_size)
{
    switch (kind) {
      case PolicyKind::Greedy:
        return std::make_unique<GreedyPolicy>();
      case PolicyKind::Fifo:
        return std::make_unique<FifoPolicy>();
      case PolicyKind::LocalityGathering:
        return std::make_unique<LocalityGatheringPolicy>();
      case PolicyKind::Hybrid:
        return std::make_unique<HybridPolicy>(partition_size);
    }
    ENVY_PANIC("policy: unknown policy kind");
}

} // namespace envy
