#include "envy/policy/locality_gathering.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "envy/cleaner.hh"
#include "envy/segment_space.hh"

namespace envy {

void
LocalityGatheringPolicy::attach(SegmentSpace &space, Cleaner &cleaner)
{
    space_ = &space;
    cleaner_ = &cleaner;
    writes_.assign(space.numLogical(), 1.0); // uniform prior
    sinceDecay_ = 0;
    decayPeriod_ = std::max<std::uint64_t>(
        4096,
        space.numLogical() * space.segmentCapacity().value() / 4);
    shedCold_ = shedHot_ = pullCold_ = pullHot_ = 0;
}

std::uint32_t
LocalityGatheringPolicy::flushDestination(std::uint64_t origin_tag)
{
    const auto log_seg = static_cast<std::uint32_t>(origin_tag);
    ENVY_ASSERT(log_seg < space_->numLogical(), "bad origin tag ",
                origin_tag);

    // Per-segment write-rate bookkeeping with exponential decay so
    // the allocation follows workload shifts.
    writes_[log_seg] += 1.0;
    if (++sinceDecay_ >= decayPeriod_) {
        for (double &w : writes_)
            w *= 0.5;
        sinceDecay_ = 0;
    }

    if (space_->freeSlots(log_seg) > PageCount(0))
        return log_seg;

    planRedistribution(log_seg);
    cleaner_->clean(log_seg, this);
    ENVY_ASSERT(space_->freeSlots(log_seg) > PageCount(0),
                "policy: clean of segment ", log_seg, " left no room");
    return log_seg;
}

double
LocalityGatheringPolicy::targetLive(std::uint32_t log_seg) const
{
    // §4.3's heuristic aims for equal (cleaning frequency x cleaning
    // cost) across segments.  With frequency ~ writes/free and cost ~
    // live/free, equal products mean free space proportional to
    // sqrt(write rate); that closed form has no degenerate fixed
    // points, unlike iterating on the measured frequencies.
    const double cap = asDouble(space_->segmentCapacity());
    const std::uint32_t n = space_->numLogical();

    double sum_sqrt = 0.0;
    for (std::uint32_t i = 0; i < n; ++i)
        sum_sqrt += std::sqrt(writes_[i]);

    const double total_pages = cap * n;
    // Exact integer sum via the space's Fenwick index: identical to
    // accumulating the per-segment doubles (each count fits a double
    // exactly), without the O(n) walk per flush.
    const double total_live = asDouble(space_->liveInRange(0, n));
    const double total_free = total_pages - total_live;

    return cachedTarget(log_seg, sum_sqrt, total_free);
}

double
LocalityGatheringPolicy::cachedTarget(std::uint32_t log_seg,
                                      double sum_sqrt,
                                      double total_free) const
{
    const double cap = asDouble(space_->segmentCapacity());
    const double share = std::sqrt(writes_[log_seg]) / sum_sqrt;
    const double want_free =
        std::min(total_free * share, cap * 0.98);
    return std::max(cap - want_free, 0.0);
}

void
LocalityGatheringPolicy::planRedistribution(std::uint32_t log_seg)
{
    const double cap = asDouble(space_->segmentCapacity());
    const double live = asDouble(space_->liveCount(log_seg));
    const std::uint32_t n = space_->numLogical();

    planSeg_ = log_seg;
    shedCold_ = shedHot_ = pullCold_ = pullHot_ = 0;
    shedColdDest_ = shedHotDest_ = log_seg;

    // Shared allocator inputs, computed once per clean.
    double sum_sqrt = 0.0;
    for (std::uint32_t i = 0; i < n; ++i)
        sum_sqrt += std::sqrt(writes_[i]);
    const double total_live = asDouble(space_->liveInRange(0, n));
    const double total_free = cap * n - total_live;

    const double max_shift = cap * maxShiftFraction;
    double delta = std::clamp(
        live - cachedTarget(log_seg, sum_sqrt, total_free), -max_shift,
        max_shift);

    // The clean must leave room for this segment's own flush traffic
    // no matter what the allocator says.
    const double min_free = std::max(cap / 64.0, 4.0);
    const double forced = live - (cap - min_free);
    const double dead_band = std::max(cap / 64.0, 4.0);
    if (std::abs(delta) < dead_band && forced <= 0.0)
        return;
    delta = std::max(delta, forced);

    // Where do segments sit relative to their targets on each side?
    // Shedding toward the deficit (and pulling from the surplus) is
    // what actually moves free space to where the allocator wants
    // it; a blind 50/50 split would bounce pages around inside a hot
    // region forever.  Temperature order is preserved by which *end*
    // of the victim each share is taken from.
    double below_need = 0.0, above_need = 0.0;
    double below_surplus = 0.0, above_surplus = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (i == log_seg)
            continue;
        const double gap =
            cachedTarget(i, sum_sqrt, total_free) -
            asDouble(space_->liveCount(i));
        if (gap > 0.0)
            (i < log_seg ? below_need : above_need) += gap;
        else
            (i < log_seg ? below_surplus : above_surplus) -= gap;
    }

    if (delta > 0.0) {
        auto shed = static_cast<std::uint64_t>(delta);
        const double need = below_need + above_need;
        shedHot_ = need > 0.0
                       ? static_cast<std::uint64_t>(
                             static_cast<double>(shed) *
                                 (below_need / need))
                       : shed / 2;
        shedCold_ = shed - shedHot_;
        // Ship to the nearest segment in each direction with room
        // (normally the direct neighbour; walking further keeps free
        // space flowing when a whole hot region is full).
        shedHotDest_ = findRoom(log_seg, -1);
        shedColdDest_ = findRoom(log_seg, +1);
        if (shedHotDest_ == log_seg) {
            shedCold_ += shedHot_;
            shedHot_ = 0;
        }
        if (shedColdDest_ == log_seg) {
            if (shedHotDest_ != log_seg) {
                shedHot_ += shedCold_;
            }
            shedCold_ = 0;
        }
        if (shedHotDest_ != log_seg)
            shedHot_ = std::min(
                shedHot_, space_->freeSlots(shedHotDest_).value() - 1);
        if (shedColdDest_ != log_seg)
            shedCold_ = std::min(
                shedCold_,
                space_->freeSlots(shedColdDest_).value() - 1);
    } else {
        auto pull = static_cast<std::uint64_t>(-delta);
        const double surplus = below_surplus + above_surplus;
        pullCold_ = surplus > 0.0
                        ? static_cast<std::uint64_t>(
                              static_cast<double>(pull) *
                                  (below_surplus / surplus))
                        : pull / 2;
        pullHot_ = pull - pullCold_;
        if (log_seg == 0)
            pullCold_ = 0;
        if (log_seg + 1 >= n)
            pullHot_ = 0;
    }
}

std::uint32_t
LocalityGatheringPolicy::findRoom(std::uint32_t log_seg, int dir) const
{
    // Nearest segment in direction dir with a spare slot beyond the
    // one its own flush traffic needs (log_seg itself when there is
    // none in that direction).
    return space_->nearestWithSpareFree(log_seg, dir);
}

std::uint32_t
LocalityGatheringPolicy::divert(std::uint32_t log_seg, std::uint64_t idx,
                                PageCount total)
{
    if (log_seg != planSeg_)
        return log_seg;
    // Slot order is coldest -> hottest: ship the head toward the
    // colder (higher-numbered) end and the tail toward the hotter.
    const std::uint64_t total_v = total.value();
    if (idx < shedCold_)
        return shedColdDest_;
    if (shedHot_ > 0 && idx >= total_v - std::min(shedHot_, total_v))
        return shedHotDest_;
    return log_seg;
}

void
LocalityGatheringPolicy::onCleaned(std::uint32_t log_seg)
{
    if (log_seg != planSeg_)
        return;
    // Pull in the temperature-preserving directions, but never leave
    // this segment without room for its own flush traffic.
    const std::uint64_t room = space_->freeSlots(log_seg).value();
    std::uint64_t budget = room > 1 ? room - 1 : 0;
    if (pullHot_ > 0 && log_seg + 1 < space_->numLogical() && budget > 0) {
        const std::uint64_t n = std::min(pullHot_, budget);
        budget -=
            cleaner_->movePages(log_seg + 1, log_seg, true, PageCount(n))
                .value();
    }
    if (pullCold_ > 0 && log_seg > 0 && budget > 0) {
        const std::uint64_t n = std::min(pullCold_, budget);
        cleaner_->movePages(log_seg - 1, log_seg, false, PageCount(n));
    }
    shedCold_ = shedHot_ = pullCold_ = pullHot_ = 0;
}

std::uint64_t
LocalityGatheringPolicy::defaultOrigin(LogicalPageId page) const
{
    // Stripe fresh pages across segments.
    return page.value() % space_->numLogical();
}

double
LocalityGatheringPolicy::writeShare(std::uint32_t log_seg) const
{
    double sum = 0.0;
    for (double w : writes_)
        sum += w;
    return sum > 0.0 ? writes_[log_seg] / sum : 0.0;
}

} // namespace envy
