/**
 * @file
 * Locality-gathering cleaning policy (paper §4.3).
 *
 * Two cooperating mechanisms:
 *
 * 1. *Locality preservation*: a flushed page returns to the segment it
 *    was copied out of (the write buffer records the origin), so
 *    segments develop stable temperatures.  Within a segment the
 *    cleaner preserves slot order and flushes append at the tail, so
 *    pages near the tail are hotter than average.
 *
 * 2. *Free-space redistribution*: the policy aims for an equal product
 *    of (cleaning frequency x cleaning cost) across segments — a
 *    segment cleaned ten times more often should have a tenth the
 *    cost.  On each clean the segment's product is compared with the
 *    array average: if above, pages are shed (hot tail pages to the
 *    lower-numbered neighbour, cold head pages to the higher-numbered
 *    one — this is what gathers hot data near segment 0); if below,
 *    pages are pulled from the neighbours in the same
 *    temperature-preserving directions.
 *
 * Under uniform access the products are equal from the start, nothing
 * moves, every segment sits at the array utilization and the cost is
 * pinned at u/(1-u) — 4 at 80% (Fig 8's flat locality-gathering line).
 */

#ifndef ENVY_ENVY_POLICY_LOCALITY_GATHERING_HH
#define ENVY_ENVY_POLICY_LOCALITY_GATHERING_HH

#include <vector>

#include "envy/policy/cleaning_policy.hh"

namespace envy {

class LocalityGatheringPolicy : public CleaningPolicy
{
  public:
    const char *name() const override { return "locality-gathering"; }

    void attach(SegmentSpace &space, Cleaner &cleaner) override;
    std::uint32_t flushDestination(std::uint64_t origin_tag) override;
    std::uint32_t divert(std::uint32_t log_seg, std::uint64_t idx,
                         PageCount total) override;
    void onCleaned(std::uint32_t log_seg) override;
    std::uint64_t defaultOrigin(LogicalPageId page) const override;

    /** Decayed share of flush traffic into a segment (for tests). */
    double writeShare(std::uint32_t log_seg) const;

    /** Free-space allocator's live-page target (for tests). */
    double targetLive(std::uint32_t log_seg) const;

  private:
    /** Fraction of a segment that may move per clean. */
    static constexpr double maxShiftFraction = 0.25;

    void planRedistribution(std::uint32_t log_seg);
    std::uint32_t findRoom(std::uint32_t log_seg, int dir) const;
    double cachedTarget(std::uint32_t log_seg, double sum_sqrt,
                        double total_free) const;

    SegmentSpace *space_ = nullptr;
    Cleaner *cleaner_ = nullptr;

    std::vector<double> writes_; //!< decayed flush counts per segment
    std::uint64_t sinceDecay_ = 0;
    std::uint64_t decayPeriod_ = 1 << 20;

    // Plan for the clean currently in flight.
    std::uint32_t planSeg_ = 0;
    std::uint64_t shedCold_ = 0; //!< head pages -> shedColdDest_
    std::uint64_t shedHot_ = 0;  //!< tail pages -> shedHotDest_
    std::uint32_t shedColdDest_ = 0;
    std::uint32_t shedHotDest_ = 0;
    std::uint64_t pullCold_ = 0; //!< head of segment below -> here
    std::uint64_t pullHot_ = 0;  //!< tail of segment above -> here
};

} // namespace envy

#endif // ENVY_ENVY_POLICY_LOCALITY_GATHERING_HH
