/**
 * @file
 * Hybrid cleaning policy (paper §4.4) — the policy eNVy ships with.
 *
 * Adjacent logical segments are grouped into partitions (16 segments
 * per partition is the paper's tuned value, Fig 9).  Between
 * partitions the locality-gathering machinery runs: flushed pages
 * return to their origin *partition* and free space is redistributed
 * to equalise the product of cleaning frequency and cleaning cost.
 * Within a partition segments are cleaned in plain FIFO order, which
 * handles the near-uniform traffic inside a temperature band as well
 * as greedy does while being trivial to implement in hardware.
 */

#ifndef ENVY_ENVY_POLICY_HYBRID_HH
#define ENVY_ENVY_POLICY_HYBRID_HH

#include <vector>

#include "envy/policy/cleaning_policy.hh"

namespace envy {

class HybridPolicy : public CleaningPolicy
{
  public:
    explicit HybridPolicy(std::uint32_t partition_size = 16);

    const char *name() const override { return "hybrid"; }

    void attach(SegmentSpace &space, Cleaner &cleaner) override;
    std::uint32_t flushDestination(std::uint64_t origin_tag) override;
    std::uint32_t divert(std::uint32_t log_seg, std::uint64_t idx,
                         PageCount total) override;
    void onCleaned(std::uint32_t log_seg) override;
    std::uint64_t defaultOrigin(LogicalPageId page) const override;

    // PR 8 concurrent-mode hooks.
    std::uint32_t peekDestination(std::uint64_t origin_tag) override;
    void noteFlush(std::uint64_t origin_tag) override;
    std::uint32_t backgroundClean(PageCount watermark) override;

    std::uint32_t partitionSize() const { return partitionSize_; }
    std::uint32_t numPartitions() const { return numPartitions_; }
    std::uint32_t partitionOf(std::uint32_t log_seg) const
    {
        return log_seg / partitionSize_;
    }

    /** Free-space allocator's live-page target (for tests). */
    double targetLive(std::uint32_t part) const;

  private:
    static constexpr double maxShiftFraction = 0.25;

    std::uint32_t firstSeg(std::uint32_t part) const
    {
        return part * partitionSize_;
    }
    std::uint32_t segsIn(std::uint32_t part) const;

    /** Partition-aggregate live page count. */
    std::uint64_t partitionLive(std::uint32_t part) const;
    std::uint64_t partitionCapacity(std::uint32_t part) const;
    std::uint64_t partitionFree(std::uint32_t part) const;

    /** Segment in @p part with a free slot for diverted pages. */
    std::uint32_t divertTarget(std::uint32_t part) const;

    void planRedistribution(std::uint32_t part, std::uint32_t victim);
    std::uint32_t cleanNext(std::uint32_t part);
    std::uint32_t findPartitionRoom(std::uint32_t part, int dir) const;

    std::uint32_t partitionSize_;
    std::uint32_t numPartitions_ = 0;

    SegmentSpace *space_ = nullptr;
    Cleaner *cleaner_ = nullptr;

    std::vector<std::uint32_t> active_;   //!< append segment per part
    std::vector<std::uint32_t> fifoNext_; //!< victim rotation per part
    std::vector<double> writes_; //!< decayed flush counts per part
    std::uint64_t sinceDecay_ = 0;
    std::uint64_t decayPeriod_ = 1 << 20;

    // Plan for the clean in flight.
    std::uint32_t planVictim_ = 0;
    std::uint32_t planPart_ = 0;
    std::uint64_t shedCold_ = 0;
    std::uint64_t shedHot_ = 0;
    std::uint32_t shedColdPart_ = 0;
    std::uint32_t shedHotPart_ = 0;
    std::uint64_t pullCold_ = 0;
    std::uint64_t pullHot_ = 0;
};

} // namespace envy

#endif // ENVY_ENVY_POLICY_HYBRID_HH
