/**
 * @file
 * Interface of the cleaning policies studied in paper §4.
 *
 * A policy answers three questions: *where* to write a page being
 * flushed from the write buffer, *which* segment to clean when that
 * destination has no room, and *how* to redistribute data while a
 * segment is being cleaned.  The mechanics of cleaning (copying live
 * pages to the reserved erased segment, updating the page table,
 * erasing — Fig 5) are shared and live in Cleaner.
 *
 * Policies reason in terms of *logical* segment numbers.  A logical
 * segment keeps its identity when the cleaner relocates its contents
 * into the reserved physical segment; the ordering of logical segments
 * is what locality gathering uses to migrate hot data toward segment 0
 * (§4.3).
 */

#ifndef ENVY_ENVY_POLICY_CLEANING_POLICY_HH
#define ENVY_ENVY_POLICY_CLEANING_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace envy {

class SegmentSpace;
class Cleaner;

class CleaningPolicy
{
  public:
    virtual ~CleaningPolicy() = default;

    virtual const char *name() const = 0;

    /** Wire the policy to a space; called once before any flush. */
    virtual void attach(SegmentSpace &space, Cleaner &cleaner);

    /**
     * Pick (and make room in) the logical segment that should receive
     * a page being flushed from the write buffer.  On return the
     * segment has at least one free slot; the policy triggers cleaning
     * through its Cleaner as needed.
     *
     * @param origin_tag  the tag recorded when the page entered the
     *                    buffer (see originTag()).
     */
    virtual std::uint32_t flushDestination(std::uint64_t origin_tag) = 0;

    /**
     * Redistribution hook: while logical segment @p log_seg is being
     * cleaned, the @p idx-th of its @p total live pages (in slot
     * order, i.e. coldest first) may be diverted to another logical
     * segment.  Return @p log_seg to keep the page.
     */
    virtual std::uint32_t
    divert(std::uint32_t log_seg, std::uint64_t idx, PageCount total)
    {
        (void)idx;
        (void)total;
        return log_seg;
    }

    /** Called after a clean of @p log_seg completes (for pull-style
     *  redistribution and bookkeeping). */
    virtual void onCleaned(std::uint32_t log_seg) { (void)log_seg; }

    /** Sentinel: "no segment" for peekDestination/backgroundClean. */
    static constexpr std::uint32_t noSegment = 0xFFFFFFFFu;

    /**
     * Non-cleaning twin of flushDestination() (PR 8 concurrent mode):
     * return a logical segment that *already* has a free slot for a
     * page with @p origin_tag, or noSegment when making room would
     * require a clean.  Must not clean and must not mutate policy
     * state — the caller may retry or give up and wait for a
     * background cleaner.  Pair a successful flush with noteFlush().
     */
    virtual std::uint32_t peekDestination(std::uint64_t origin_tag)
    {
        (void)origin_tag;
        return noSegment;
    }

    /**
     * Bookkeeping a flushDestination() call would have done (write
     * rate accounting etc.), applied when the caller flushed to a
     * segment obtained from peekDestination().
     */
    virtual void noteFlush(std::uint64_t origin_tag) { (void)origin_tag; }

    /**
     * One increment of proactive cleaning (PR 8 background cleaner
     * pool): if some partition/segment is below the policy's free
     * watermark (@p watermark free pages per partition), clean one
     * victim and return its logical segment; otherwise return
     * noSegment without cleaning.  Runs with the same exclusive
     * structural lock the inline flushDestination() path holds.
     */
    virtual std::uint32_t backgroundClean(PageCount watermark)
    {
        (void)watermark;
        return noSegment;
    }

    /**
     * Tag to record when a page whose old copy lived in logical
     * segment @p log_seg enters the write buffer.  Locality gathering
     * flushes a page back to its origin segment; hybrid back to its
     * origin partition (both encode the segment and derive the
     * partition later); greedy/FIFO ignore the tag.
     */
    virtual std::uint64_t originTag(std::uint32_t log_seg) const
    {
        return log_seg;
    }

    /** Origin tag for a page that never lived in flash. */
    virtual std::uint64_t defaultOrigin(LogicalPageId page) const = 0;
};

/** Policy selector used by configuration code. */
enum class PolicyKind { Greedy, Fifo, LocalityGathering, Hybrid };

const char *policyKindName(PolicyKind kind);

/**
 * Build a policy.  @p partition_size only matters for Hybrid (the
 * paper's tuned value is 16 segments per partition, §4.4).
 */
std::unique_ptr<CleaningPolicy> makePolicy(PolicyKind kind,
                                           std::uint32_t partition_size);

} // namespace envy

#endif // ENVY_ENVY_POLICY_CLEANING_POLICY_HH
