/**
 * @file
 * Whole-system images: serialise an EnvyStore's non-volatile domains
 * (flash cell/segment state and battery-backed SRAM) to a host file
 * and reconstruct the store later.
 *
 * In the real hardware nothing needs "saving" — flash and
 * battery-backed SRAM simply persist.  For a simulator library,
 * images are what make that property usable across process runs:
 * save on exit, load on start, and the page table / write buffer /
 * cleaning state come back exactly as the power-fail recovery path
 * would find them (loading in fact reuses that path to rebuild the
 * in-core mirrors).
 *
 * Format (little-endian): header {magic "ENVYIMG1", config fields},
 * SRAM blob, then per-segment {writePtr, eraseCycles, owner words,
 * and in functional mode the page bytes of every used slot}.
 */

#ifndef ENVY_ENVY_IMAGE_HH
#define ENVY_ENVY_IMAGE_HH

#include <memory>
#include <string>

#include "envy/envy_store.hh"

namespace envy {

class EnvyImage
{
  public:
    /** Serialise @p store (as-is, buffered state included). */
    static void save(EnvyStore &store, const std::string &path);

    /** Reconstruct a store from an image file; fatals on format or
     *  I/O problems. */
    static std::unique_ptr<EnvyStore> load(const std::string &path);

    /**
     * Like load(), but a malformed image is an error value instead of
     * a panic: on any I/O problem, truncation, bad magic, or
     * out-of-range field the function returns nullptr and fills
     * @p error with a description.  Every section read is
     * bounds-checked against the geometry the header declares, so a
     * corrupt file cannot drive the store through an assert.
     */
    static std::unique_ptr<EnvyStore>
    tryLoad(const std::string &path, std::string &error);
};

} // namespace envy

#endif // ENVY_ENVY_IMAGE_HH
