#include "envy/cleaner_pool.hh"

#include <chrono>

#include "common/logging.hh"
#include "envy/cleaner.hh"
#include "envy/controller.hh"

namespace envy {

CleanerPool::CleanerPool(Controller &ctl, unsigned cleaners,
                         PageCount watermark,
                         obs::MetricsRegistry *metrics)
    : ctl_(ctl),
      cleaners_(cleaners),
      watermark_(watermark),
      metPoolCleans(obs::counterOf(metrics, "cleaner.pool_cleans",
                                   "segments",
                                   "segments cleaned by background "
                                   "cleaner threads")),
      busy_(cleaners)
{
    ENVY_ASSERT(cleaners_ > 0, "cleaner_pool: needs at least one "
                               "cleaner thread");
}

CleanerPool::~CleanerPool()
{
    stop();
}

void
CleanerPool::start()
{
    if (!threads_.empty())
        return;
    {
        MutexLock lock(mu_);
        stop_ = false;
        poked_ = false;
    }
    threads_.reserve(cleaners_);
    for (unsigned i = 0; i < cleaners_; ++i)
        threads_.emplace_back([this, i] { run(i); });
}

void
CleanerPool::stop()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    threads_.clear();
}

void
CleanerPool::poke()
{
    {
        MutexLock lock(mu_);
        poked_ = true;
    }
    cv_.notify_all();
}

std::vector<Tick>
CleanerPool::busyTimes() const
{
    std::vector<Tick> out(cleaners_);
    for (unsigned i = 0; i < cleaners_; ++i)
        out[i] = busy_[i].load(std::memory_order_relaxed);
    return out;
}

void
CleanerPool::run(unsigned idx)
{
    for (;;) {
        const bool cleaned = ctl_.backgroundCleanOnce(watermark_);
        busy_[idx].store(Cleaner::threadBusyTime(),
                         std::memory_order_relaxed);
        if (cleaned) {
            metPoolCleans.add();
            // Stalled producers re-check their policy's room.
            ctl_.notifyRoom();
            MutexLock lock(mu_);
            if (stop_)
                return;
            continue; // stay ahead while below the watermark
        }
        // Nothing below the watermark: doze until poked (producer
        // backpressure) or the next poll tick.
        MutexLock lock(mu_);
        if (stop_)
            return;
        if (!poked_)
            cv_.wait_for(lock, std::chrono::milliseconds(1));
        poked_ = false;
        if (stop_)
            return;
    }
}

} // namespace envy
