/**
 * @file
 * Even-wear enforcement (paper §4.3).
 *
 * Locality gathering deliberately cleans hot segments far more often
 * than cold ones, so physical erase counts would diverge without
 * intervention.  eNVy tracks program/erase cycles per segment and,
 * "when the oldest segment gets over 100 cycles older than the
 * youngest, a cleaning operation is initiated that swaps the data in
 * the two areas."
 *
 * The swap is implemented as a rotation through the reserve: the hot
 * logical segment (living on the most-worn physical segment) moves to
 * the current reserve, the cold logical segment moves onto the worn
 * physical segment, and the cold segment's old home becomes the new
 * reserve.  Two segment copies instead of three, same wear effect.
 */

#ifndef ENVY_ENVY_WEAR_LEVELER_HH
#define ENVY_ENVY_WEAR_LEVELER_HH

#include <cstdint>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "obs/metrics.hh"
#include "sim/stats.hh"

namespace envy {

class Cleaner;
class SegmentSpace;

class WearLeveler : public StatGroup
{
  public:
    /**
     * @param threshold  trigger when max-min erase-cycle spread
     *                   exceeds this (paper: 100)
     */
    explicit WearLeveler(std::uint64_t threshold = 100,
                         StatGroup *parent = nullptr,
                         obs::MetricsRegistry *metrics = nullptr);

    std::uint64_t threshold() const { return threshold_; }

    /**
     * Called by the Cleaner after every erase.  If the wear spread
     * exceeds the threshold, rotates the most- and least-worn data
     * segments through the reserve.  The rotation's progress is
     * staged through the persistent wear record in SegmentSpace so a
     * power failure at any instant leaves a resumable state.
     *
     * @return true if a rotation was performed.
     */
    bool maybeRotate(SegmentSpace &space, Cleaner &cleaner);

    /**
     * Finish a rotation a power failure interrupted (recovery path;
     * a no-op when no wear record is pending).
     *
     * @return true if a rotation was resumed.
     */
    bool resumeRotation(SegmentSpace &space, Cleaner &cleaner);

    /** Current max-min spread of erase cycles over data segments. */
    std::uint64_t spread(const SegmentSpace &space) const;

    Counter statRotations;

    // Observability metrics (docs/OBSERVABILITY.md).
    obs::Counter metRotations;
    obs::Gauge metSpread; //!< erase-cycle spread at each trigger check

  private:
    /** Shared epilogue of a fresh and a resumed rotation. */
    void finishRotation(SegmentSpace &space, Cleaner &cleaner,
                        SegmentId phys_old, SegmentId phys_young,
                        SegmentId fresh) ENVY_REQUIRES(mu_);

    std::uint64_t threshold_;

    // Guards the rotation state.  Sits between Controller and Cleaner
    // in the lock order: a rotation calls cleaner.moveAllPhysical()
    // with mu_ held, so the cleaner must never call into the wear
    // leveler while holding its own lock (clean()/resume() run
    // maybeRotate after releasing it).
    mutable Mutex mu_;
    //!< rotation itself erases; avoid recursion
    bool busy_ ENVY_GUARDED_BY(mu_) = false;
    /**
     * Cycle count of each physical segment at its last rotation.
     * Parking cold data on a worn segment does not reduce its cycle
     * count, so a plain spread comparison would re-fire on the same
     * segment forever; a segment only becomes eligible again after
     * aging a further threshold's worth of erases.
     */
    std::vector<std::uint64_t> lastRotation_ ENVY_GUARDED_BY(mu_);
};

} // namespace envy

#endif // ENVY_ENVY_WEAR_LEVELER_HH
