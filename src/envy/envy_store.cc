#include "envy/envy_store.hh"

#include "common/logging.hh"
#include "envy/recovery.hh"
#include "persist/backend.hh"
#include "persist/commit_pipeline.hh"

namespace envy {

EnvyStore::EnvyStore(const EnvyConfig &cfg)
    : StatGroup("envy"), cfg_(cfg)
{
    const Geometry &g = cfg_.geom;
    if (const char *problem = g.validate())
        ENVY_FATAL("store: bad geometry: ", problem);

    // Battery-backed SRAM layout: page table, segment-space state,
    // write buffer (metadata + page frames).
    ptBase_ = 0;
    spaceBase_ =
        ptBase_ + PageTable::bytesNeeded(g.physicalPages().value());
    bufferBase_ =
        spaceBase_ + SegmentSpace::bytesNeeded(g.numSegments());
    const std::uint32_t buffer_pages = static_cast<std::uint32_t>(
        g.effectiveWriteBufferPages().value());
    const std::uint64_t sram_bytes =
        bufferBase_ + WriteBuffer::bytesNeeded(buffer_pages, g.pageSize,
                                               cfg_.storeData);

    if (!cfg_.persistPath.empty()) {
        persist_ = std::make_unique<persist::PersistBackend>(
            cfg_, sram_bytes, &metrics_);
        if (persist_->reopening())
            cfg_.prePopulate = false; // state comes from the file
    }

    sram_ = std::make_unique<SramArray>(sram_bytes, true);
    flash_ = std::make_unique<FlashArray>(
        g, cfg_.timing, cfg_.storeData, this, &metrics_,
        cfg_.slowDataplane,
        persist_ ? persist_->flashPersist() : nullptr);
    pageTable_ = std::make_unique<PageTable>(
        *sram_, ptBase_, g.physicalPages().value());
    mmu_ = std::make_unique<Mmu>(*pageTable_, cfg_.tlbSize, this);
    buffer_ = std::make_unique<WriteBuffer>(
        *sram_, bufferBase_, buffer_pages, g.pageSize,
        cfg_.storeData, cfg_.bufferThreshold, this, &metrics_);
    space_ = std::make_unique<SegmentSpace>(*flash_, *sram_,
                                            spaceBase_, &metrics_);
    wearLeveler_ =
        std::make_unique<WearLeveler>(cfg_.wearThreshold, this,
                                      &metrics_);
    cleaner_ = std::make_unique<Cleaner>(*space_, *mmu_,
                                         wearLeveler_.get(), this,
                                         &metrics_);
    policy_ = makePolicy(cfg_.policy, cfg_.partitionSize);
    controller_ = std::make_unique<Controller>(
        g, *flash_, *mmu_, *buffer_, *space_, *cleaner_, *policy_,
        cfg_.autoDrain, this, &metrics_);

    if (cfg_.numWorkers > 1 || cfg_.numCleaners > 0) {
        controller_->setConcurrency(cfg_.numWorkers,
                                    cfg_.numCleaners);
        // Durable + concurrent (PR 10): SRAM-hit writers take the
        // structural lock shared so the commit pipeline's quiesced
        // dirty capture never sees a torn write.
        if (persist_)
            controller_->setPersistentConcurrent(true);
        if (cfg_.numCleaners > 0) {
            const PageCount watermark(
                cfg_.cleanerWatermark != 0
                    ? cfg_.cleanerWatermark
                    : space_->segmentCapacity().value() / 2);
            cleanerPool_ = std::make_unique<CleanerPool>(
                *controller_, cfg_.numCleaners, watermark,
                &metrics_);
            controller_->backpressureHook = [this] {
                cleanerPool_->poke();
            };
        }
    }

    if (persist_ && persist_->reopening()) {
        // Restart: overlay the journal-replayed SRAM image (the
        // components above initialised it as if empty) and rebuild
        // flash state from the store file, exactly like image loading
        // overlays a saved image before recovering.
        persist_->restoreSram(*sram_);
        flash_->restoreFromPersist();
    }

    if (cfg_.prePopulate)
        controller_->populate(cfg_.placement, cfg_.agedStride);

    if (persist_) {
        // Arm the journal only now: populate/restore work above is
        // covered wholesale by the checkpoint below, not journaled.
        persist_->activate(*sram_);
        if (persist_->reopening())
            persist_->finishReopen(Recovery::run(*this));
        else
            persist_->finishFresh();
    }

    if (persist_ && controller_->concurrent()) {
        // Group commit: one multi-range journal record per epoch,
        // flushed by a dedicated pipeline thread that coalesces
        // concurrent persistFlush()/persistCommit() callers.
        persist_->journal().setGroupCommit(true);
        commitPipeline_ = std::make_unique<persist::CommitPipeline>(
            *controller_, *persist_, *sram_, &metrics_);
        commitPipeline_->start();
    }

    if (cleanerPool_)
        cleanerPool_->start();
}

EnvyStore::~EnvyStore()
{
    // Stop every background thread before the shutdown checkpoint
    // walks SRAM: epoch thread first (it quiesces through the
    // controller), then the cleaners.
    if (commitPipeline_)
        commitPipeline_->stop();
    if (cleanerPool_)
        cleanerPool_->stop();
    if (persist_)
        persist_->shutdown();
}

std::uint64_t
EnvyStore::size() const
{
    return cfg_.geom.logicalBytes().value();
}

void
EnvyStore::read(Addr addr, std::span<std::uint8_t> out)
{
    controller_->read(addr, out);
}

void
EnvyStore::write(Addr addr, std::span<const std::uint8_t> in)
{
    controller_->write(addr, in);
    // Serial stores journal after every op; concurrent stores batch
    // through the pipeline — durability is claimed at persistFlush().
    if (persist_ && !commitPipeline_)
        persist_->opEnd();
}

std::uint8_t
EnvyStore::readU8(Addr addr)
{
    std::uint8_t v;
    read(addr, {&v, 1});
    return v;
}

std::uint32_t
EnvyStore::readU32(Addr addr)
{
    std::uint8_t b[4];
    read(addr, b);
    return std::uint32_t(b[0]) | std::uint32_t(b[1]) << 8 |
           std::uint32_t(b[2]) << 16 | std::uint32_t(b[3]) << 24;
}

std::uint64_t
EnvyStore::readU64(Addr addr)
{
    std::uint8_t b[8];
    read(addr, b);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

void
EnvyStore::writeU8(Addr addr, std::uint8_t v)
{
    write(addr, {&v, 1});
}

void
EnvyStore::writeU32(Addr addr, std::uint32_t v)
{
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    write(addr, b);
}

void
EnvyStore::writeU64(Addr addr, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    write(addr, b);
}

void
EnvyStore::flushAll()
{
    controller_->flushAll();
    persistFlush();
}

double
EnvyStore::cleaningCost() const
{
    return cleaner_->cleaningCost();
}

RecoveryReport
EnvyStore::powerFailAndRecover()
{
    // Quiesce every background thread: recovery rebuilds the very
    // structures they walk, and a "power failure" stops every thread.
    if (commitPipeline_)
        commitPipeline_->stop();
    if (cleanerPool_)
        cleanerPool_->stop();
    const RecoveryReport report = Recovery::run(*this);
    if (persist_)
        persist_->opEnd(); // recovery's SRAM repairs become durable
    if (cleanerPool_)
        cleanerPool_->start();
    if (commitPipeline_)
        commitPipeline_->start();
    return report;
}

const persist::PersistReport &
EnvyStore::persistReport() const
{
    ENVY_ASSERT(persist_, "store: persistReport on a volatile store");
    return persist_->report();
}

void
EnvyStore::persistFlush()
{
    if (!persist_)
        return;
    if (commitPipeline_)
        commitPipeline_->flushWait();
    else
        persist_->opEnd();
}

void
EnvyStore::persistSync()
{
    if (!persist_)
        return;
    if (commitPipeline_)
        commitPipeline_->syncWait();
    else
        persist_->opEndSync();
}

void
EnvyStore::persistCommit()
{
    if (!persist_)
        return;
    if (commitPipeline_)
        commitPipeline_->commitWait();
    else
        persist_->commit();
}

} // namespace envy
