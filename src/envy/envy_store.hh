/**
 * @file
 * Public facade of the eNVy storage system.
 *
 * An EnvyStore assembles the whole stack — flash array, battery-backed
 * SRAM (page table, segment state, write buffer), MMU, cleaner, policy
 * and controller — and presents the paper's programming model: a
 * linear, persistent, word-addressable memory array with transparent
 * in-place updates.
 *
 *     EnvyConfig cfg;               // paper's 2 GB system by default
 *     cfg.geom = Geometry::tiny();  // ...or something laptop-sized
 *     EnvyStore store(cfg);
 *     store.writeU64(0x1000, 42);
 *     assert(store.readU64(0x1000) == 42);
 */

#ifndef ENVY_ENVY_ENVY_STORE_HH
#define ENVY_ENVY_ENVY_STORE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/geometry.hh"
#include "envy/cleaner_pool.hh"
#include "envy/controller.hh"
#include "envy/page_table.hh"
#include "envy/recovery.hh"
#include "envy/wear_leveler.hh"
#include "flash/flash_array.hh"
#include "obs/metrics.hh"
#include "sram/sram_array.hh"

namespace envy {

namespace persist {
class CommitPipeline;
class PersistBackend;
struct PersistReport;
} // namespace persist

struct EnvyConfig
{
    Geometry geom = Geometry::tiny();
    FlashTiming timing;
    PolicyKind policy = PolicyKind::Hybrid;
    std::uint32_t partitionSize = 16;
    /** Keep real page contents (functional) or metadata only. */
    bool storeData = true;
    /** Route page operations through the byte-at-a-time CUI oracle
     *  instead of the bulk data-plane fast path (A/B testing; also
     *  forced by the ENVY_SLOW_DATAPLANE environment variable). */
    bool slowDataplane = false;
    /** Background flush threshold; 0 = half the buffer. */
    std::uint32_t bufferThreshold = 0;
    /** Wear-leveling trigger (max-min erase-cycle spread). */
    std::uint64_t wearThreshold = 100;
    Controller::Placement placement = Controller::Placement::Striped;
    /** Segments per free-space island for Placement::Aged. */
    std::uint32_t agedStride = 16;
    /** Populate all logical pages at construction. */
    bool prePopulate = true;
    /** Drain the buffer to threshold after every write. */
    bool autoDrain = true;
    std::uint32_t tlbSize = 1024;
    /**
     * Concurrency (PR 8, docs/PERFORMANCE.md §Concurrency).  With
     * numWorkers <= 1 and numCleaners == 0 (the defaults) the store
     * keeps the historical serial code path and its byte-identical
     * output.  Raising either switches the controller to sharded
     * concurrent mode: multiple client threads may call read()/
     * write() simultaneously, and numCleaners background threads
     * clean ahead of the per-partition free-space watermark.
     * Concurrent mode composes with durable persistence (PR 10):
     * with persistPath also set, SRAM dirty marking is atomic,
     * hit-writers hold the structural lock shared, and a
     * CommitPipeline thread group-commits persistFlush() callers
     * into shared journal epochs (docs/PERSISTENCE.md §group-commit).
     */
    unsigned numWorkers = 1;
    unsigned numCleaners = 0;
    /** Free pages per partition below which background cleaners
     *  engage; 0 = half a segment's capacity. */
    std::uint32_t cleanerWatermark = 0;
    /**
     * Durable persistence (docs/PERSISTENCE.md).  Empty (default):
     * everything lives in anonymous memory and dies with the process.
     * Set to a file path: cell data and flash metadata live in a
     * MAP_SHARED store file, SRAM is journaled to `<path>.journal`,
     * and constructing an EnvyStore on an existing store replays the
     * journal and runs restart recovery instead of populating.
     */
    std::string persistPath;
    /** Journal bytes between auto-checkpoints; 0 = max(256 KiB,
     *  4 x SRAM size). */
    std::uint64_t persistCheckpointBytes = 0;
};

class EnvyStore : public StatGroup
{
  public:
    explicit EnvyStore(const EnvyConfig &cfg);
    ~EnvyStore();

    EnvyStore(const EnvyStore &) = delete;
    EnvyStore &operator=(const EnvyStore &) = delete;

    /** Host-visible bytes. */
    std::uint64_t size() const;

    // ---- the memory-mapped interface ----------------------------

    void read(Addr addr, std::span<std::uint8_t> out);
    void write(Addr addr, std::span<const std::uint8_t> in);

    std::uint8_t readU8(Addr addr);
    std::uint32_t readU32(Addr addr);
    std::uint64_t readU64(Addr addr);
    void writeU8(Addr addr, std::uint8_t v);
    void writeU32(Addr addr, std::uint32_t v);
    void writeU64(Addr addr, std::uint64_t v);

    /** Push every buffered page to flash (orderly shutdown). */
    void flushAll();

    // ---- introspection -------------------------------------------

    const EnvyConfig &config() const { return cfg_; }
    double cleaningCost() const;
    Controller &controller() { return *controller_; }
    /** Background cleaner threads; null unless cfg.numCleaners > 0. */
    CleanerPool *cleanerPool() { return cleanerPool_.get(); }
    FlashArray &flash() { return *flash_; }
    SramArray &sram() { return *sram_; }
    PageTable &pageTable() { return *pageTable_; }
    WriteBuffer &writeBuffer() { return *buffer_; }
    SegmentSpace &space() { return *space_; }
    Cleaner &cleanerRef() { return *cleaner_; }
    WearLeveler &wearLeveler() { return *wearLeveler_; }

    /**
     * The store's metrics registry (docs/OBSERVABILITY.md): every
     * component registers its counters here at construction, and
     * recovery re-registers idempotently after a power failure.
     * Snapshot it at window boundaries; the snapshot is isolated
     * from further mutation.
     */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Simulate a power failure and recovery: every in-core structure
     * is rebuilt from battery-backed SRAM and flash metadata, any
     * interrupted clean or wear rotation is completed, and orphaned
     * copies produced by a crash mid-operation are reclaimed.  See
     * recovery.cc.
     */
    RecoveryReport powerFailAndRecover();

    // ---- durable persistence (cfg.persistPath) -------------------

    /** True when this store is backed by a store file on disk. */
    bool persistent() const { return persist_ != nullptr; }

    /** What opening the store did (created vs replayed+recovered);
     *  only meaningful on a persistent store. */
    const persist::PersistReport &persistReport() const;

    /**
     * Make everything acknowledged so far SIGKILL-durable: append the
     * dirty SRAM ranges to the journal (plain write(2) — a completed
     * write survives process death).  Harnesses call this before
     * acknowledging work done through paths that bypass write(),
     * e.g. shadow-transaction commits.  On a concurrent store this
     * blocks on the commit pipeline's next group epoch instead of
     * running a private flush, so N concurrent callers share one
     * journal append.
     */
    void persistFlush();

    /**
     * persistFlush() plus the journal log force (fdatasync): the
     * appended records survive power loss, and on a concurrent store
     * one device barrier is shared by every caller in the epoch —
     * the group-commit amortisation durable acks ride
     * (serve::ServeConfig::syncAcks).  Flash-resident pages the
     * journal no longer covers still ride the checkpoint/commit
     * schedule; the full barrier is persistCommit().
     */
    void persistSync();

    /** Power-loss barrier: journal fdatasync + store-file msync
     *  (on a concurrent store, via the pipeline's sync epoch). */
    void persistCommit();

    /** The group-commit epoch thread; null unless the store is both
     *  persistent and concurrent. */
    persist::CommitPipeline *commitPipeline()
    {
        return commitPipeline_.get();
    }

  private:
    EnvyConfig cfg_;
    // Declared before the components: they hold handles into it, so
    // it must outlive them (destruction runs bottom-up).
    obs::MetricsRegistry metrics_;
    // Before the SRAM/flash: the journal snapshots the SramArray and
    // the FlashArray writes through the store file, so the backend
    // must outlive both.
    std::unique_ptr<persist::PersistBackend> persist_;
    std::unique_ptr<SramArray> sram_;
    std::unique_ptr<FlashArray> flash_;
    std::unique_ptr<PageTable> pageTable_;
    std::unique_ptr<Mmu> mmu_;
    std::unique_ptr<WriteBuffer> buffer_;
    std::unique_ptr<SegmentSpace> space_;
    std::unique_ptr<WearLeveler> wearLeveler_;
    std::unique_ptr<Cleaner> cleaner_;
    std::unique_ptr<CleaningPolicy> policy_;
    std::unique_ptr<Controller> controller_;
    // After the controller: cleaner threads must stop (join) before
    // anything they reach through it is torn down.
    std::unique_ptr<CleanerPool> cleanerPool_;
    // Last: the epoch thread reaches the controller, backend, and
    // SRAM, so it stops first (the dtor stops it explicitly too).
    std::unique_ptr<persist::CommitPipeline> commitPipeline_;

    // SRAM layout offsets.
    Addr ptBase_ = 0;
    Addr spaceBase_ = 0;
    Addr bufferBase_ = 0;

    friend class Recovery;
};

} // namespace envy

#endif // ENVY_ENVY_ENVY_STORE_HH
