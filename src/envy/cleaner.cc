#include "envy/cleaner.hh"

#include "common/logging.hh"
#include "envy/wear_leveler.hh"

namespace envy {

Cleaner::Cleaner(SegmentSpace &space, Mmu &mmu,
                 WearLeveler *wear_leveler, StatGroup *parent)
    : StatGroup("cleaner", parent),
      statCleans(this, "cleans", "segment cleaning operations"),
      statCleanerPrograms(this, "cleanerPrograms",
                          "page programs performed by the cleaner"),
      statWearRotations(this, "wearRotations",
                        "wear-leveling data rotations"),
      space_(space),
      mmu_(mmu),
      wearLeveler_(wear_leveler)
{
    if (space_.flash().storesData())
        scratch_.resize(space_.flash().geom().pageSize);
}

void
Cleaner::relocate(SegmentId src_phys, std::uint32_t slot,
                  LogicalPageId logical, SegmentId dst_phys)
{
    FlashArray &flash = space_.flash();
    const FlashPageAddr src{src_phys, slot};
    if (flash.storesData())
        flash.readPage(src, scratch_);
    const FlashPageAddr dst =
        flash.appendPage(dst_phys, logical, scratch_);
    mmu_.mapToFlash(logical, dst);
    flash.invalidatePage(src);
    ++statCleanerPrograms;
    busyTime_ +=
        flash.timing().readTime +
        flash.timing().programTimeAfter(flash.eraseCycles(dst_phys));
}

Cleaner::CleanResult
Cleaner::clean(std::uint32_t seg, CleaningPolicy *policy)
{
    return cleanInternal(seg, policy, false);
}

Cleaner::CleanResult
Cleaner::resume(std::uint32_t seg)
{
    return cleanInternal(seg, nullptr, true);
}

Cleaner::CleanResult
Cleaner::cleanInternal(std::uint32_t seg, CleaningPolicy *policy,
                       bool resuming)
{
    FlashArray &flash = space_.flash();
    const SegmentId victim = space_.physOf(seg);
    const SegmentId dest = space_.reserve();
    if (!resuming) {
        ENVY_ASSERT(flash.usedSlots(dest) == 0, "reserve segment ",
                    dest.value(), " is not erased");
    }

    space_.beginCleanRecord(seg, victim, dest);

    CleanResult result;
    const Tick busy0 = busyTime_;
    const std::uint64_t live_total = flash.liveCount(victim);

    // Collect the live slots first: relocation mutates the segment's
    // owner table as it invalidates source pages.
    std::vector<std::pair<std::uint32_t, LogicalPageId>> live;
    live.reserve(live_total);
    flash.forEachLive(victim,
                      [&](std::uint32_t slot, LogicalPageId logical) {
                          live.emplace_back(slot, logical);
                      });

    bool crashed = false;
    for (std::uint64_t idx = 0; idx < live.size(); ++idx) {
        const auto [slot, logical] = live[idx];
        std::uint32_t target = seg;
        if (policy)
            target = policy->divert(seg, idx, live_total);
        SegmentId dst = dest;
        if (target != seg) {
            const SegmentId other = space_.physOf(target);
            if (flash.freeSlots(other) > 0) {
                dst = other;
                ++result.diverted;
            } else {
                target = seg; // divert target full; keep the page
            }
        }
        if (target == seg)
            ++result.copied;
        relocate(victim, slot, logical, dst);
        if (crashHook && crashHook()) {
            crashed = true;
            break;
        }
    }
    if (crashed) {
        // Simulated power failure: leave the persistent clean record
        // set; recovery will finish the job.
        result.busyTime = busyTime_ - busy0;
        return result;
    }

    // Carry transaction shadow copies (§6) along to the new segment.
    std::vector<std::uint32_t> shadows;
    flash.forEachShadow(victim, [&](std::uint32_t slot) {
        shadows.push_back(slot);
    });
    for (const std::uint32_t slot : shadows) {
        const FlashPageAddr src{victim, slot};
        if (flash.storesData())
            flash.readPage(src, scratch_);
        const FlashPageAddr dst = flash.appendShadow(dest, scratch_);
        flash.invalidatePage(src);
        ++statCleanerPrograms;
        busyTime_ += flash.timing().readTime +
                     flash.timing().programTime;
        ++result.copied;
        if (shadowMoved)
            shadowMoved(src, dst);
    }

    busyTime_ += flash.eraseSegment(victim);
    result.busyTime = busyTime_ - busy0;
    space_.commitClean(seg);
    space_.noteClean(seg);
    space_.clearCleanRecord();
    ++statCleans;

    if (policy)
        policy->onCleaned(seg);
    if (wearLeveler_)
        wearLeveler_->maybeRotate(space_, *this);
    return result;
}

std::uint64_t
Cleaner::movePages(std::uint32_t from, std::uint32_t to, bool from_tail,
                   std::uint64_t count)
{
    ENVY_ASSERT(from != to, "moving pages to the same segment");
    FlashArray &flash = space_.flash();
    const SegmentId src = space_.physOf(from);
    const SegmentId dst = space_.physOf(to);

    count = std::min({count, flash.liveCount(src),
                      flash.freeSlots(dst)});
    if (count == 0)
        return 0;

    std::uint64_t moved = 0;
    const std::uint32_t used =
        static_cast<std::uint32_t>(flash.usedSlots(src));
    if (from_tail) {
        for (std::uint32_t i = used; i-- > 0 && moved < count;) {
            const FlashPageAddr addr{src, i};
            const LogicalPageId owner = flash.pageOwner(addr);
            if (!owner.valid())
                continue;
            relocate(src, i, owner, dst);
            ++moved;
        }
    } else {
        for (std::uint32_t i = 0; i < used && moved < count; ++i) {
            const FlashPageAddr addr{src, i};
            const LogicalPageId owner = flash.pageOwner(addr);
            if (!owner.valid())
                continue;
            relocate(src, i, owner, dst);
            ++moved;
        }
    }
    return moved;
}

double
Cleaner::cleaningCost() const
{
    const std::uint64_t flushed = space_.flushClock();
    if (flushed == 0)
        return 0.0;
    return static_cast<double>(statCleanerPrograms.value()) /
           static_cast<double>(flushed);
}

} // namespace envy
