#include "envy/cleaner.hh"

#include "common/logging.hh"
#include "envy/wear_leveler.hh"
#include "faults/crash_point.hh"
#include "obs/trace.hh"

namespace envy {

thread_local Tick Cleaner::tlBusy_ = 0;

namespace {

// Victim-liveness histogram buckets: powers of two up to the largest
// supported segment capacity (full-scale geometry is 64 Ki pages).
std::vector<std::uint64_t>
victimLiveEdges()
{
    std::vector<std::uint64_t> edges{0};
    for (std::uint64_t e = 1; e <= (1u << 16); e *= 2)
        edges.push_back(e);
    return edges;
}

} // namespace

Cleaner::Cleaner(SegmentSpace &space, Mmu &mmu,
                 WearLeveler *wear_leveler, StatGroup *parent,
                 obs::MetricsRegistry *metrics)
    : StatGroup("cleaner", parent),
      statCleans(this, "cleans", "segment cleaning operations"),
      statCleanerPrograms(this, "cleanerPrograms",
                          "page programs performed by the cleaner"),
      statWearRotations(this, "wearRotations",
                        "wear-leveling data rotations"),
      metSegmentsCleaned(obs::counterOf(metrics,
                                        "cleaner.segments_cleaned",
                                        "segments",
                                        "segment cleaning operations")),
      metPagesCopied(obs::counterOf(metrics, "cleaner.pages_copied",
                                    "pages",
                                    "page programs performed by the "
                                    "cleaner (diverts included)")),
      metCleaningCost(obs::gaugeOf(metrics, "cleaner.cleaning_cost",
                                   "programs/flush",
                                   "cleaner programs per flushed page "
                                   "(paper section 4.1), updated after "
                                   "every clean")),
      metVictimLive(obs::histogramOf(metrics, "cleaner.victim_live",
                                     "pages",
                                     "live pages per cleaned victim",
                                     victimLiveEdges())),
      space_(space),
      mmu_(mmu),
      wearLeveler_(wear_leveler),
      copyData_(space.flash().storesData())
{
    if (copyData_)
        scratch_.resize(space_.flash().geom().pageSize);
}

void
Cleaner::relocate(SegmentId src_phys, SlotId slot,
                  LogicalPageId logical, SegmentId dst_phys)
{
    FlashArray &flash = space_.flash();
    const FlashPageAddr src{src_phys, slot};
    if (copyData_)
        flash.readPage(src, scratch_);
    const FlashPageAddr dst =
        flash.appendPage(dst_phys, logical, scratch_);
    ENVY_CRASH_POINT("cleaner.relocate.after_program");
    mmu_.mapToFlash(logical, dst);
    ENVY_CRASH_POINT("cleaner.relocate.after_map");
    flash.invalidatePage(src);
    ENVY_CRASH_POINT("cleaner.relocate.done");
    ++statCleanerPrograms;
    metPagesCopied.add();
    chargeBusy(flash.timing().readTime +
               flash.timing().programTimeAfter(
                   flash.eraseCycles(dst_phys)));
}

PageCount
Cleaner::moveShadows(SegmentId src, SegmentId dst)
{
    FlashArray &flash = space_.flash();
    std::vector<SlotId> &shadows = shadowScratch_;
    shadows.clear();
    flash.forEachShadow(src, [&](SlotId slot) {
        shadows.push_back(slot);
    });
    for (const SlotId slot : shadows) {
        const FlashPageAddr from{src, slot};
        if (copyData_)
            flash.readPage(from, scratch_);
        const FlashPageAddr to = flash.appendShadow(dst, scratch_);
        ENVY_CRASH_POINT("cleaner.shadow.after_program");
        flash.invalidatePage(from);
        ++statCleanerPrograms;
        metPagesCopied.add();
        chargeBusy(flash.timing().readTime +
                   flash.timing().programTime);
        if (shadowMoved)
            shadowMoved(from, to);
        ENVY_CRASH_POINT("cleaner.shadow.done");
    }
    return PageCount(shadows.size());
}

Cleaner::CleanResult
Cleaner::clean(std::uint32_t log_seg, CleaningPolicy *policy)
{
    CleanResult result;
    {
        MutexLock lock(mu_);
        result = cleanInternal(log_seg, policy, false);
    }
    // The completion callbacks re-enter the cleaner (onCleaned pulls
    // pages via movePages; a wear rotation runs moveAllPhysical), so
    // they must run after mu_ is released.
    if (policy)
        policy->onCleaned(log_seg);
    if (wearLeveler_)
        wearLeveler_->maybeRotate(space_, *this);
    return result;
}

Cleaner::CleanResult
Cleaner::resume(std::uint32_t log_seg)
{
    CleanResult result;
    {
        MutexLock lock(mu_);
        result = cleanInternal(log_seg, nullptr, true);
    }
    if (wearLeveler_)
        wearLeveler_->maybeRotate(space_, *this);
    return result;
}

Cleaner::CleanResult
Cleaner::cleanInternal(std::uint32_t log_seg, CleaningPolicy *policy,
                       bool resuming)
{
    FlashArray &flash = space_.flash();
    const SegmentId victim = space_.physOf(log_seg);
    const SegmentId dest = space_.reserve();
    if (!resuming) {
        ENVY_ASSERT(flash.usedSlots(dest) == PageCount(0),
                    "cleaner: reserve segment ", dest,
                    " is not erased");
    }

    space_.beginCleanRecord(log_seg, victim, dest);
    ENVY_CRASH_POINT("cleaner.clean.begin");

    CleanResult result;
    const Tick busy0 = busyTime_;
    const PageCount live_total = flash.liveCount(victim);

    ENVY_TRACE("cleaner.clean.start", obs::tv("logical", log_seg),
               obs::tv("victim", victim.value()),
               obs::tv("dest", dest.value()),
               obs::tv("live", live_total.value()),
               obs::tv("capacity", space_.segmentCapacity().value()),
               obs::tv("resuming", resuming));

    // Collect the live slots first: relocation mutates the segment's
    // owner table as it invalidates source pages.
    std::vector<std::pair<SlotId, LogicalPageId>> &live = liveScratch_;
    live.clear();
    live.reserve(live_total.value());
    flash.forEachLive(victim,
                      [&](SlotId slot, LogicalPageId logical) {
                          live.emplace_back(slot, logical);
                      });

    for (std::uint64_t idx = 0; idx < live.size(); ++idx) {
        const auto [slot, logical] = live[idx];
        std::uint32_t target = log_seg;
        if (policy)
            target = policy->divert(log_seg, idx, live_total);
        SegmentId dst = dest;
        if (target != log_seg) {
            const SegmentId other = space_.physOf(target);
            if (flash.freeSlots(other) > PageCount(0)) {
                dst = other;
                result.diverted += PageCount(1);
            } else {
                target = log_seg; // divert target full; keep the page
            }
        }
        if (target == log_seg)
            result.copied += PageCount(1);
        relocate(victim, slot, logical, dst);
    }

    // Carry transaction shadow copies (§6) along to the new segment.
    result.copied += moveShadows(victim, dest);

    ENVY_CRASH_POINT("cleaner.clean.before_erase");
    // On resume the victim may already have been erased just before
    // the crash; do not burn a second cycle on it.
    if (!(resuming && flash.usedSlots(victim) == PageCount(0)))
        chargeBusy(flash.eraseSegment(victim));
    ENVY_CRASH_POINT("cleaner.clean.after_erase");
    result.busyTime = busyTime_ - busy0;
    space_.commitClean(log_seg);
    ENVY_CRASH_POINT("cleaner.clean.after_commit");
    space_.noteClean(log_seg);
    space_.clearCleanRecord();
    ++statCleans;
    metSegmentsCleaned.add();
    metVictimLive.record(live_total.value());
    metCleaningCost.set(cleaningCost());
    ENVY_TRACE("cleaner.clean.end", obs::tv("logical", log_seg),
               obs::tv("copied", result.copied.value()),
               obs::tv("diverted", result.diverted.value()),
               obs::tv("ticks", result.busyTime));
    return result;
}

PageCount
Cleaner::movePages(std::uint32_t from, std::uint32_t to, bool from_tail,
                   PageCount count)
{
    MutexLock lock(mu_);
    ENVY_ASSERT(from != to, "cleaner: moving pages to the same segment");
    FlashArray &flash = space_.flash();
    const SegmentId src = space_.physOf(from);
    const SegmentId dst = space_.physOf(to);

    count = std::min({count, flash.liveCount(src),
                      flash.freeSlots(dst)});
    if (count == PageCount(0))
        return PageCount(0);

    PageCount moved;
    const std::uint32_t used =
        static_cast<std::uint32_t>(flash.usedSlots(src).value());
    if (from_tail) {
        for (std::uint32_t i = used; i-- > 0 && moved < count;) {
            const FlashPageAddr addr{src, SlotId(i)};
            const LogicalPageId owner = flash.pageOwner(addr);
            if (!owner.valid())
                continue;
            relocate(src, SlotId(i), owner, dst);
            moved += PageCount(1);
        }
    } else {
        for (std::uint32_t i = 0; i < used && moved < count; ++i) {
            const FlashPageAddr addr{src, SlotId(i)};
            const LogicalPageId owner = flash.pageOwner(addr);
            if (!owner.valid())
                continue;
            relocate(src, SlotId(i), owner, dst);
            moved += PageCount(1);
        }
    }
    return moved;
}

PageCount
Cleaner::moveAllPhysical(SegmentId src, SegmentId dst)
{
    MutexLock lock(mu_);
    FlashArray &flash = space_.flash();
    std::vector<std::pair<SlotId, LogicalPageId>> &live = liveScratch_;
    live.clear();
    flash.forEachLive(src, [&](SlotId slot, LogicalPageId p) {
        live.emplace_back(slot, p);
    });
    for (const auto &[slot, logical] : live)
        relocate(src, slot, logical, dst);
    const PageCount moved(live.size());
    return moved + moveShadows(src, dst);
}

double
Cleaner::cleaningCost() const
{
    const std::uint64_t flushed = space_.flushClock();
    if (flushed == 0)
        return 0.0;
    return static_cast<double>(statCleanerPrograms.value()) /
           static_cast<double>(flushed);
}

} // namespace envy
