/**
 * @file
 * The eNVy controller's memory-management unit (paper §5.1).
 *
 * The MMU caches recently used page-table mappings so that most host
 * accesses avoid the SRAM table walk.  It is write-through: updates go
 * to the page table immediately and refresh the cached entry, matching
 * the hardware's "page table mapping is updated in parallel with the
 * data transfer" behaviour.
 */

#ifndef ENVY_ENVY_MMU_HH
#define ENVY_ENVY_MMU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hh"
#include "envy/page_table.hh"
#include "sim/stats.hh"

namespace envy {

class Mmu : public StatGroup
{
  public:
    /**
     * @param table     the backing page table
     * @param tlb_size  cached mappings (power of two, direct mapped)
     */
    Mmu(PageTable &table, std::uint32_t tlb_size = 1024,
        StatGroup *parent = nullptr);

    /** Translate through the TLB, falling back to the page table. */
    PageTable::Location lookup(LogicalPageId page);

    /** Write-through update used by COW, flush and the cleaner. */
    void mapToFlash(LogicalPageId page, FlashPageAddr addr);
    void mapToSram(LogicalPageId page, BufferSlotId slot);

    /** Drop every cached mapping (recovery does this). */
    void flushTlb();

    PageTable &table() { return table_; }

    Counter statHits;
    Counter statMisses;

  private:
    struct TlbEntry
    {
        LogicalPageId page; //!< invalid id marks an empty way
        PageTable::Location loc;
    };

    std::uint32_t indexOf(LogicalPageId page) const
    {
        return static_cast<std::uint32_t>(page.value()) & mask_;
    }

    /**
     * Stripe guarding one group of TLB ways and, transitively, the
     * page-table entries reached through them.  Keyed by TLB index so
     * two pages aliasing the same direct-mapped way always serialize;
     * pages in different stripes touch disjoint TLB ways and disjoint
     * 6-byte table entries.  Leaf locks: every public method acquires
     * and releases its stripe internally, so no lock-order edge ever
     * points out of the MMU (docs/INTERNALS.md lock-order table).
     */
    Mutex &stripeFor(LogicalPageId page)
    {
        return stripeMu_[indexOf(page) & (numStripes - 1)];
    }

    static constexpr std::uint32_t numStripes = 64;

    PageTable &table_;
    std::uint32_t mask_;
    std::vector<TlbEntry> tlb_;
    std::array<Mutex, numStripes> stripeMu_;
};

} // namespace envy

#endif // ENVY_ENVY_MMU_HH
