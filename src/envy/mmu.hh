/**
 * @file
 * The eNVy controller's memory-management unit (paper §5.1).
 *
 * The MMU caches recently used page-table mappings so that most host
 * accesses avoid the SRAM table walk.  It is write-through: updates go
 * to the page table immediately and refresh the cached entry, matching
 * the hardware's "page table mapping is updated in parallel with the
 * data transfer" behaviour.
 */

#ifndef ENVY_ENVY_MMU_HH
#define ENVY_ENVY_MMU_HH

#include <cstdint>
#include <vector>

#include "envy/page_table.hh"
#include "sim/stats.hh"

namespace envy {

class Mmu : public StatGroup
{
  public:
    /**
     * @param table     the backing page table
     * @param tlb_size  cached mappings (power of two, direct mapped)
     */
    Mmu(PageTable &table, std::uint32_t tlb_size = 1024,
        StatGroup *parent = nullptr);

    /** Translate through the TLB, falling back to the page table. */
    PageTable::Location lookup(LogicalPageId page);

    /** Write-through update used by COW, flush and the cleaner. */
    void mapToFlash(LogicalPageId page, FlashPageAddr addr);
    void mapToSram(LogicalPageId page, BufferSlotId slot);

    /** Drop every cached mapping (recovery does this). */
    void flushTlb();

    PageTable &table() { return table_; }

    Counter statHits;
    Counter statMisses;

  private:
    struct TlbEntry
    {
        LogicalPageId page; //!< invalid id marks an empty way
        PageTable::Location loc;
    };

    std::uint32_t indexOf(LogicalPageId page) const
    {
        return static_cast<std::uint32_t>(page.value()) & mask_;
    }

    PageTable &table_;
    std::uint32_t mask_;
    std::vector<TlbEntry> tlb_;
};

} // namespace envy

#endif // ENVY_ENVY_MMU_HH
