/**
 * @file
 * Logical/physical segment identity, the erased reserve, and the
 * per-segment clocks the cleaning policies feed on.
 *
 * eNVy always keeps one segment fully erased so a clean can start
 * immediately (§3.4).  When logical segment L is cleaned, its live
 * pages move into the reserve; the reserve becomes L's new physical
 * home and L's old, now empty, physical segment becomes the new
 * reserve.  The physOf table, the reserve pointer and the
 * clean-in-progress record are persisted in battery-backed SRAM so the
 * controller "can recover quickly after a failure" (§3.4).
 */

#ifndef ENVY_ENVY_SEGMENT_SPACE_HH
#define ENVY_ENVY_SEGMENT_SPACE_HH

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "flash/flash_array.hh"
#include "obs/metrics.hh"
#include "sram/sram_array.hh"

namespace envy {

class SegmentSpace
{
  public:
    /**
     * @param flash  the flash array (must be fully erased at start)
     * @param sram   battery-backed SRAM for the persistent state
     * @param base   byte offset of that state inside @p sram
     */
    SegmentSpace(FlashArray &flash, SramArray &sram, Addr base,
                 obs::MetricsRegistry *metrics = nullptr);
    ~SegmentSpace();

    SegmentSpace(const SegmentSpace &) = delete;
    SegmentSpace &operator=(const SegmentSpace &) = delete;

    /** SRAM bytes needed for @p num_segments segments. */
    static ByteCount bytesNeeded(std::uint64_t num_segments);

    /** Data segments; one physical segment is always the reserve. */
    std::uint32_t numLogical() const { return numLogical_; }

    PageCount segmentCapacity() const
    {
        return flash_.pagesPerSegment();
    }

    SegmentId physOf(std::uint32_t logical) const;
    /** Logical owner of a physical segment; invalid for the reserve. */
    std::uint32_t logOf(SegmentId phys) const;
    SegmentId reserve() const
    {
        MutexLock lock(mu_);
        return reserve_;
    }
    static constexpr std::uint32_t noLogical = 0xFFFFFFFFu;

    // Convenience queries in logical-segment terms.
    PageCount freeSlots(std::uint32_t logical) const;
    PageCount liveCount(std::uint32_t logical) const;
    PageCount invalidCount(std::uint32_t logical) const;
    double utilization(std::uint32_t logical) const;

    // ---- incremental indexes -------------------------------------
    //
    // Maintained via FlashArray::segmentChangedHook so the cleaning
    // policies answer "roomiest segment / best victim / room in a
    // partition" in O(log n) instead of rescanning every logical
    // segment per flush.  Tie-breaking reproduces the historical
    // serial scans exactly (see each query's doc comment); a property
    // test cross-checks the indexes against full rescans.

    /** Largest freeSlots() over all logical segments. */
    PageCount maxFreeSlots() const;

    /**
     * FIRST logical segment with the maximum freeSlots() — the index
     * a forward scan keeping strictly-greater values would settle on
     * (segment 0 when every segment is full).
     */
    std::uint32_t roomiestLogical() const;

    /**
     * LAST logical segment with the maximum invalidCount() — the
     * index a forward scan keeping greater-or-equal values would
     * settle on (the last segment when nothing is invalid).
     */
    std::uint32_t mostInvalidLogical() const;

    /** Sum of freeSlots() over logical segments [first, end). */
    PageCount freeInRange(std::uint32_t first, std::uint32_t end) const;

    /** Sum of liveCount() over logical segments [first, end). */
    PageCount liveInRange(std::uint32_t first, std::uint32_t end) const;

    /**
     * Smallest logical segment in [first, end) with freeSlots() > 0;
     * noLogical when the whole range is full.
     */
    std::uint32_t firstWithFreeInRange(std::uint32_t first,
                                       std::uint32_t end) const;

    /**
     * Nearest logical segment strictly beyond @p from in direction
     * @p dir (+1/-1) with freeSlots() > 1 — i.e. a spare slot beyond
     * the one its own flush traffic needs.  Returns @p from itself
     * when no such segment exists in that direction.
     */
    std::uint32_t nearestWithSpareFree(std::uint32_t from,
                                       int dir) const;

    /**
     * Commit a completed clean: @p logical now lives in what was the
     * reserve; its old physical segment becomes the reserve.
     */
    void commitClean(std::uint32_t logical);

    /**
     * Swap the physical homes of two logical segments through the
     * reserve (wear-leveling, §4.3).  @p a lands on the old reserve,
     * @p b on @p a's old home, and @p b's old home becomes reserve.
     */
    void rotateForWear(std::uint32_t a, std::uint32_t b);

    // ---- policy clocks -------------------------------------------

    /** Advances once per page flushed from the write buffer. */
    std::uint64_t flushClock() const
    {
        MutexLock lock(mu_);
        return flushClock_;
    }

    void
    noteFlush()
    {
        MutexLock lock(mu_);
        ++flushClock_;
        metFlushes.add();
    }

    std::uint64_t cleanCount(std::uint32_t logical) const;
    std::uint64_t lastCleanClock(std::uint32_t logical) const;
    void noteClean(std::uint32_t logical);

    // ---- crash recovery ------------------------------------------

    struct CleanRecord
    {
        bool inProgress = false;
        std::uint32_t logical = 0;
        SegmentId victimPhys;
        SegmentId destPhys;
    };

    /** Persist the record before the first page of a clean moves. */
    void beginCleanRecord(std::uint32_t logical, SegmentId victim,
                          SegmentId dest);
    /** Clear the record once the clean has fully committed. */
    void clearCleanRecord();
    CleanRecord cleanRecord() const;

    /**
     * Persistent record of an in-flight wear-leveling rotation
     * (§4.3).  The rotation moves data twice through the reserve, so
     * — unlike a clean — it has two windows in which live pages sit
     * on segments the naming commit has not blessed yet.  The stage
     * field tells recovery how far the rotation got:
     *
     *   1  moving `hot`'s data from physOld onto fresh (the reserve)
     *   2  physOld erased; moving `cold`'s data onto it
     *
     * The naming rewire (rotateForWear) and clearWearRecord() bracket
     * the commit; recovery distinguishes "committed but record not
     * yet cleared" by checking whether physOf(hot) already equals
     * fresh.
     */
    struct WearRecord
    {
        std::uint32_t stage = 0; //!< 0 = no rotation in flight
        std::uint32_t hot = 0;   //!< logical segment being demoted
        std::uint32_t cold = 0;  //!< logical segment being promoted
        SegmentId physOld;
        SegmentId physYoung;
        SegmentId fresh;
    };

    /** Persist stage 1 before the first page of a rotation moves. */
    void beginWearRecord(std::uint32_t hot, std::uint32_t cold,
                         SegmentId phys_old, SegmentId phys_young,
                         SegmentId fresh);
    /** Advance the persisted stage (after the first erase). */
    void advanceWearRecord(std::uint32_t stage);
    /** Clear the record once the rotation has fully committed. */
    void clearWearRecord();
    WearRecord wearRecord() const;

    /** Rebuild in-core mirrors from SRAM after a power failure. */
    void recover();

    FlashArray &flash() { return flash_; }
    const FlashArray &flash() const { return flash_; }

  private:
    // SRAM header layout: 0 reserve, 4 cleanInProgress, 8 cleanLogical,
    // 12 victimPhys, 16 destPhys, 20 wearStage, 24 wearHot, 28 wearCold,
    // 32 wearPhysOld, 36 wearPhysYoung, 40 wearFresh, 44 pad; the
    // physOf table follows.
    static constexpr Addr headerBytes = 48;

    Addr physOfAddr(std::uint32_t logical) const
    {
        return base_ + headerBytes + Addr(logical) * 4;
    }

    void persistAll() ENVY_REQUIRES(mu_);

    // ---- index maintenance ---------------------------------------
    //
    // Invariants (checked by the property test in
    // tests/test_segment_space.cc):
    //   freeOf_/invalidOf_/liveOf_[l] == the flash counts of
    //     physOf_[l];
    //   byFree_/byInvalid_ hold exactly one (count, l) pair per
    //     logical segment;
    //   freeBit_/liveBit_ prefix sums equal the cached counts;
    //   freePos_ = { l : freeOf_[l] > 0 },
    //   free2Pos_ = { l : freeOf_[l] > 1 }.
    // refreshIndex(l) re-reads the flash counts for l's physical
    // segment and applies the deltas; it is driven by the flash
    // array's segmentChangedHook plus explicit calls wherever the
    // logical->physical mapping itself is rewired.
    void installHook() ENVY_REQUIRES(mu_);
    void rebuildIndexes() ENVY_REQUIRES(mu_);
    void refreshIndex(std::uint32_t logical) ENVY_REQUIRES(mu_);

    void bitAdd(std::vector<std::int64_t> &bit, std::uint32_t i,
                std::int64_t delta) ENVY_REQUIRES(mu_);
    std::int64_t bitPrefix(const std::vector<std::int64_t> &bit,
                           std::uint32_t n) const ENVY_REQUIRES(mu_);

    FlashArray &flash_;
    SramArray &sram_;
    Addr base_;
    std::uint32_t numLogical_;

    // Guards the naming tables, indexes and policy clocks.  Lock
    // order (docs/STATIC_ANALYSIS.md §4): Controller -> WearLeveler
    // -> Cleaner -> SegmentSpace -> WriteBuffer; the flash
    // segmentChangedHook acquires this lock, so no method may mutate
    // flash while holding it.
    mutable Mutex mu_;

    // In-core mirrors (authoritative copies live in SRAM).
    std::vector<SegmentId> physOf_ ENVY_GUARDED_BY(mu_);
    std::vector<std::uint32_t> logOf_ ENVY_GUARDED_BY(mu_);
    SegmentId reserve_ ENVY_GUARDED_BY(mu_);

    // Incremental indexes (derived state; see refreshIndex).
    std::vector<std::uint64_t> freeOf_ ENVY_GUARDED_BY(mu_);
    std::vector<std::uint64_t> invalidOf_ ENVY_GUARDED_BY(mu_);
    std::vector<std::uint64_t> liveOf_ ENVY_GUARDED_BY(mu_);
    std::set<std::pair<std::uint64_t, std::uint32_t>>
        byFree_ ENVY_GUARDED_BY(mu_);
    std::set<std::pair<std::uint64_t, std::uint32_t>>
        byInvalid_ ENVY_GUARDED_BY(mu_);
    //!< Fenwick trees, 1-based
    std::vector<std::int64_t> freeBit_ ENVY_GUARDED_BY(mu_);
    std::vector<std::int64_t> liveBit_ ENVY_GUARDED_BY(mu_);
    //!< logicals with free > 0 / free > 1
    std::set<std::uint32_t> freePos_ ENVY_GUARDED_BY(mu_);
    std::set<std::uint32_t> free2Pos_ ENVY_GUARDED_BY(mu_);

    // Observability (docs/OBSERVABILITY.md): the flush clock as a
    // counter, so cleaning cost is computable from a snapshot alone.
    obs::Counter metFlushes;

    // Policy clocks (reconstructed, not persisted: heuristics only).
    std::uint64_t flushClock_ ENVY_GUARDED_BY(mu_) = 0;
    std::vector<std::uint64_t> cleanCount_ ENVY_GUARDED_BY(mu_);
    std::vector<std::uint64_t> lastCleanClock_ ENVY_GUARDED_BY(mu_);
};

} // namespace envy

#endif // ENVY_ENVY_SEGMENT_SPACE_HH
