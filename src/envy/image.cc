#include "envy/image.hh"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace envy {

namespace {

constexpr char magic[8] = {'E', 'N', 'V', 'Y', 'I', 'M', 'G', '2'};

/**
 * Thrown by the reading helpers on malformed input and converted to
 * a return value (tryLoad) or a FATAL (load) at the API boundary, so
 * the parsing code can stay linear.
 */
struct ImageError
{
    std::string message;
};

template <typename... Args>
[[noreturn]] void
fail(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    throw ImageError{os.str()};
}

/** fopen with close-on-every-exit (including thrown ImageErrors). */
struct FileHandle
{
    explicit FileHandle(std::FILE *file) : f(file) {}
    ~FileHandle()
    {
        if (f)
            std::fclose(f);
    }
    FileHandle(const FileHandle &) = delete;
    FileHandle &operator=(const FileHandle &) = delete;
    std::FILE *f;
};

void
putU64(std::FILE *f, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    if (std::fwrite(b, 1, 8, f) != 8)
        ENVY_FATAL("image: write failed");
}

std::uint64_t
getU64(std::FILE *f)
{
    std::uint8_t b[8];
    if (std::fread(b, 1, 8, f) != 8)
        fail("image: file is truncated");
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return v;
}

void
putBytes(std::FILE *f, std::span<const std::uint8_t> bytes)
{
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size())
        ENVY_FATAL("image: write failed");
}

void
getBytes(std::FILE *f, std::span<std::uint8_t> bytes)
{
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
        fail("image: file is truncated");
}

// Owner encoding in the image, mirroring the array's internal one.
constexpr std::uint64_t imgDead = 0xFFFFFFFFull;
constexpr std::uint64_t imgShadow = 0xFFFFFFFEull;
// A slot consumed by a program spec-failure.  Retirement is physical
// damage, so it is part of the flash state an image must carry; a
// retired slot stores no cell data.
constexpr std::uint64_t imgRetired = 0xFFFFFFFDull;

} // namespace

void
EnvyImage::save(EnvyStore &store, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        ENVY_FATAL("image: cannot open '", path, "' for writing");

    const EnvyConfig &cfg = store.config();
    const Geometry &g = cfg.geom;
    if (std::fwrite(magic, 1, sizeof(magic), f) != sizeof(magic))
        ENVY_FATAL("image: write failed");
    putU64(f, g.pageSize);
    putU64(f, g.blockBytes);
    putU64(f, g.blocksPerChip);
    putU64(f, g.numBanks);
    putU64(f, g.effectiveLogicalPages().value());
    putU64(f, g.effectiveWriteBufferPages().value());
    putU64(f, cfg.storeData ? 1 : 0);
    putU64(f, static_cast<std::uint64_t>(cfg.policy));
    putU64(f, cfg.partitionSize);
    putU64(f, cfg.bufferThreshold);
    putU64(f, cfg.wearThreshold);
    putU64(f, cfg.tlbSize);
    putU64(f, cfg.autoDrain ? 1 : 0);

    // Battery-backed SRAM: page table, segment map, write buffer.
    SramArray &sram = store.sram();
    putU64(f, sram.size());
    putBytes(f, sram.raw());

    // Flash: per-segment state and (functional mode) cell contents.
    FlashArray &flash = store.flash();
    std::vector<std::uint8_t> page(g.pageSize);
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s) {
        const SegmentId seg{s};
        const std::uint64_t used = flash.usedSlots(seg).value();
        const std::uint64_t cap = flash.pagesPerSegment().value();
        putU64(f, used);
        putU64(f, flash.eraseCycles(seg));

        // Retired slots ahead of the write pointer (retirements that
        // survived an erase of the segment).  Most segments have no
        // retirements at all, so only scan the erased region when the
        // count says there is something to find — at paper scale that
        // turns a 64 Ki-slot sweep per segment into a counter check.
        std::vector<std::uint64_t> retired_ahead;
        if (flash.retiredCount(seg).value() > 0) {
            for (std::uint64_t slot = used; slot < cap; ++slot) {
                const FlashPageAddr addr{
                    seg, SlotId(static_cast<std::uint32_t>(slot))};
                if (flash.slotRetired(addr))
                    retired_ahead.push_back(slot);
            }
        }
        putU64(f, retired_ahead.size());
        for (const std::uint64_t slot : retired_ahead)
            putU64(f, slot);

        for (std::uint32_t slot = 0; slot < used; ++slot) {
            const FlashPageAddr addr{seg, SlotId(slot)};
            if (flash.slotRetired(addr)) {
                putU64(f, imgRetired);
                continue; // retired slots carry no data
            }
            const LogicalPageId owner = flash.pageOwner(addr);
            if (owner.valid())
                putU64(f, owner.value());
            else if (flash.pageIsShadow(addr))
                putU64(f, imgShadow);
            else
                putU64(f, imgDead);
            if (cfg.storeData) {
                flash.readPage(addr, page);
                putBytes(f, page);
            }
        }
    }
    if (std::fclose(f) != 0)
        ENVY_FATAL("image: error writing '", path, "'");
}

namespace {

std::unique_ptr<EnvyStore>
loadImpl(const std::string &path)
{
    FileHandle fh(std::fopen(path.c_str(), "rb"));
    std::FILE *f = fh.f;
    if (!f)
        fail("image: cannot open '", path, "'");

    char m[8];
    if (std::fread(m, 1, sizeof(m), f) != sizeof(m) ||
        std::memcmp(m, magic, sizeof(m)) != 0)
        fail("image: '", path, "' is not an eNVy image");

    EnvyConfig cfg;
    cfg.geom.pageSize = static_cast<std::uint32_t>(getU64(f));
    cfg.geom.blockBytes = static_cast<std::uint32_t>(getU64(f));
    cfg.geom.blocksPerChip = static_cast<std::uint32_t>(getU64(f));
    cfg.geom.numBanks = static_cast<std::uint32_t>(getU64(f));
    cfg.geom.logicalPages = getU64(f);
    cfg.geom.writeBufferPages =
        static_cast<std::uint32_t>(getU64(f));
    cfg.storeData = getU64(f) != 0;
    const std::uint64_t policy = getU64(f);
    cfg.partitionSize = static_cast<std::uint32_t>(getU64(f));
    cfg.bufferThreshold = static_cast<std::uint32_t>(getU64(f));
    cfg.wearThreshold = getU64(f);
    cfg.tlbSize = static_cast<std::uint32_t>(getU64(f));
    cfg.autoDrain = getU64(f) != 0;
    cfg.prePopulate = false; // state comes from the image

    // Validate the header before any of it drives allocation or an
    // EnvyStore constructor that would FATAL on nonsense.
    if (const char *problem = cfg.geom.validate())
        fail("image: '", path, "' header: ", problem);
    if (policy > static_cast<std::uint64_t>(PolicyKind::Hybrid))
        fail("image: '", path, "' header: unknown policy ", policy);
    cfg.policy = static_cast<PolicyKind>(policy);

    auto store = std::make_unique<EnvyStore>(cfg);

    // SRAM blob straight over the battery-backed array.
    const std::uint64_t sram_bytes = getU64(f);
    if (sram_bytes != store->sram().size()) {
        fail("image: SRAM size mismatch: ", sram_bytes, " vs ",
             store->sram().size());
    }
    getBytes(f, store->sram().raw());

    // Flash: replay each used slot in order, then restore wear.
    // Every count and slot index is checked against the segment
    // capacity the geometry implies before it is replayed.
    FlashArray &flash = store->flash();
    const std::uint64_t cap = flash.pagesPerSegment().value();
    const std::uint64_t npages =
        cfg.geom.effectiveLogicalPages().value();
    std::vector<std::uint8_t> page(cfg.geom.pageSize);
    for (std::uint32_t s = 0; s < flash.numSegments(); ++s) {
        const SegmentId seg{s};
        const std::uint64_t used = getU64(f);
        const std::uint64_t cycles = getU64(f);
        if (used > cap) {
            fail("image: segment ", s, ": ", used,
                 " used slots exceed the capacity ", cap);
        }
        const std::uint64_t ahead = getU64(f);
        if (ahead > cap - used) {
            fail("image: segment ", s, ": ", ahead,
                 " retired-ahead slots do not fit the erased region");
        }
        std::vector<std::uint32_t> retired_ahead(ahead);
        std::vector<bool> seen(cap, false);
        for (std::uint64_t i = 0; i < ahead; ++i) {
            const std::uint64_t slot = getU64(f);
            if (slot < used || slot >= cap) {
                fail("image: segment ", s, ": retired slot ", slot,
                     " outside the erased region [", used, ", ", cap,
                     ")");
            }
            if (seen[slot]) {
                fail("image: segment ", s, ": retired slot ", slot,
                     " listed twice");
            }
            seen[slot] = true;
            retired_ahead[i] = static_cast<std::uint32_t>(slot);
        }
        for (std::uint64_t slot = 0; slot < used; ++slot) {
            const std::uint64_t owner = getU64(f);
            if (owner == imgRetired) {
                // Replayed in slot order, so the segment's write
                // pointer is sitting exactly on this slot.
                flash.retireNextSlot(seg);
                continue;
            }
            if (cfg.storeData)
                getBytes(f, page);
            std::span<const std::uint8_t> data =
                cfg.storeData ? std::span<const std::uint8_t>(page)
                              : std::span<const std::uint8_t>{};
            if (owner == imgShadow) {
                flash.appendShadow(seg, data);
            } else if (owner == imgDead) {
                const FlashPageAddr a =
                    flash.appendPage(seg, LogicalPageId(0), data);
                flash.invalidatePage(a);
            } else if (owner >= npages) {
                fail("image: segment ", s, " slot ", slot, ": owner ",
                     owner, " beyond the ", npages, " logical pages");
            } else {
                flash.appendPage(seg, LogicalPageId(owner), data);
            }
        }
        for (const std::uint32_t slot : retired_ahead)
            flash.restoreRetiredAhead(seg, SlotId(slot));
        flash.restoreWear(seg, cycles);
    }
    if (std::fgetc(f) != EOF)
        fail("image: '", path, "' has bytes after the last segment");

    // The recovery path rebuilds every in-core mirror (page-table
    // consistency scan, buffer ring, segment map, policy state) from
    // the non-volatile domains we just restored.
    store->powerFailAndRecover();
    return store;
}

} // namespace

std::unique_ptr<EnvyStore>
EnvyImage::tryLoad(const std::string &path, std::string &error)
{
    try {
        return loadImpl(path);
    } catch (const ImageError &e) {
        error = e.message;
        return nullptr;
    }
}

std::unique_ptr<EnvyStore>
EnvyImage::load(const std::string &path)
{
    std::string error;
    std::unique_ptr<EnvyStore> store = tryLoad(path, error);
    if (!store)
        ENVY_FATAL(error);
    return store;
}

} // namespace envy
