/**
 * @file
 * Background cleaner threads (PR 8; paper §3.4 "cleaning proceeds in
 * the background, off the critical path").
 *
 * Each cleaner thread watches the policy's per-partition free-space
 * watermarks through Controller::backgroundCleanOnce() and cleans
 * ahead of the write-buffer-full backpressure path.  Producers that
 * do stall poke the pool through Controller::backpressureHook so a
 * cleaner wakes immediately instead of at its next poll; after every
 * clean the pool notifies the controller's room condition so stalled
 * producers re-check.
 *
 * Threads are started explicitly (start()) and joined in stop() /
 * the destructor, so EnvyStore can quiesce the pool around recovery.
 * Per-thread device-busy clocks (the Cleaner's thread-local tick
 * counter) are published after every iteration for the concurrency
 * bench's per-actor timelines.
 */

#ifndef ENVY_ENVY_CLEANER_POOL_HH
#define ENVY_ENVY_CLEANER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "obs/metrics.hh"

namespace envy {

class Controller;

class CleanerPool
{
  public:
    /**
     * @param ctl        controller to clean through
     * @param cleaners   worker thread count (>= 1)
     * @param watermark  free pages per partition below which the
     *                   policy cleans ahead
     */
    CleanerPool(Controller &ctl, unsigned cleaners, PageCount watermark,
                obs::MetricsRegistry *metrics = nullptr);
    ~CleanerPool();

    CleanerPool(const CleanerPool &) = delete;
    CleanerPool &operator=(const CleanerPool &) = delete;

    /** Launch the cleaner threads (idempotent). */
    void start();

    /** Stop and join every thread (idempotent; safe to restart). */
    void stop();

    /** Wake the pool now (a producer hit backpressure). */
    void poke();

    unsigned cleaners() const { return cleaners_; }
    PageCount watermark() const { return watermark_; }

    /**
     * Device ticks each cleaner thread has consumed so far (cleaning
     * reads/programs/erases), indexed by thread.  Safe to call while
     * the pool runs; the values trail the live clocks by one
     * iteration.
     */
    std::vector<Tick> busyTimes() const;

  private:
    void run(unsigned idx);

    Controller &ctl_;
    unsigned cleaners_;
    PageCount watermark_;
    obs::Counter metPoolCleans;

    Mutex mu_;
    std::condition_variable_any cv_;
    bool stop_ ENVY_GUARDED_BY(mu_) = false;
    bool poked_ ENVY_GUARDED_BY(mu_) = false;

    std::vector<std::thread> threads_;
    std::vector<std::atomic<Tick>> busy_;
};

} // namespace envy

#endif // ENVY_ENVY_CLEANER_POOL_HH
