#include "envy/mmu.hh"

#include "common/logging.hh"

namespace envy {

Mmu::Mmu(PageTable &table, std::uint32_t tlb_size, StatGroup *parent)
    : StatGroup("mmu", parent),
      statHits(this, "tlbHits", "translations served from the TLB"),
      statMisses(this, "tlbMisses", "translations walking the table"),
      table_(table),
      mask_(tlb_size - 1),
      tlb_(tlb_size)
{
    ENVY_ASSERT(tlb_size > 0 && (tlb_size & (tlb_size - 1)) == 0,
                "mmu: TLB size must be a power of two");
}

PageTable::Location
Mmu::lookup(LogicalPageId page)
{
    TlbEntry &e = tlb_[indexOf(page)];
    if (e.page == page) {
        ++statHits;
        return e.loc;
    }
    ++statMisses;
    e.page = page;
    e.loc = table_.lookup(page);
    return e.loc;
}

void
Mmu::mapToFlash(LogicalPageId page, FlashPageAddr addr)
{
    table_.mapToFlash(page, addr);
    TlbEntry &e = tlb_[indexOf(page)];
    e.page = page;
    e.loc.kind = PageTable::LocKind::Flash;
    e.loc.flash = addr;
}

void
Mmu::mapToSram(LogicalPageId page, BufferSlotId slot)
{
    table_.mapToSram(page, slot);
    TlbEntry &e = tlb_[indexOf(page)];
    e.page = page;
    e.loc.kind = PageTable::LocKind::Sram;
    e.loc.sramSlot = slot;
}

void
Mmu::flushTlb()
{
    for (auto &e : tlb_)
        e.page = LogicalPageId::invalid();
}

} // namespace envy
