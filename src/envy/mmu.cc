#include "envy/mmu.hh"

#include "common/logging.hh"

namespace envy {

Mmu::Mmu(PageTable &table, std::uint32_t tlb_size, StatGroup *parent)
    : StatGroup("mmu", parent),
      statHits(this, "tlbHits", "translations served from the TLB"),
      statMisses(this, "tlbMisses", "translations walking the table"),
      table_(table),
      mask_(tlb_size - 1),
      tlb_(tlb_size)
{
    ENVY_ASSERT(tlb_size > 0 && (tlb_size & (tlb_size - 1)) == 0,
                "mmu: TLB size must be a power of two");
}

PageTable::Location
Mmu::lookup(LogicalPageId page)
{
    MutexLock lock(stripeFor(page));
    TlbEntry &e = tlb_[indexOf(page)];
    if (e.page == page) {
        ++statHits;
        return e.loc;
    }
    ++statMisses;
    e.page = page;
    e.loc = table_.lookup(page);
    return e.loc;
}

void
Mmu::mapToFlash(LogicalPageId page, FlashPageAddr addr)
{
    MutexLock lock(stripeFor(page));
    table_.mapToFlash(page, addr);
    TlbEntry &e = tlb_[indexOf(page)];
    e.page = page;
    e.loc.kind = PageTable::LocKind::Flash;
    e.loc.flash = addr;
}

void
Mmu::mapToSram(LogicalPageId page, BufferSlotId slot)
{
    MutexLock lock(stripeFor(page));
    table_.mapToSram(page, slot);
    TlbEntry &e = tlb_[indexOf(page)];
    e.page = page;
    e.loc.kind = PageTable::LocKind::Sram;
    e.loc.sramSlot = slot;
}

void
Mmu::flushTlb()
{
    // Recovery-time only (the store is quiesced), but sweep stripe by
    // stripe anyway so the method is safe to call concurrently.
    for (std::uint32_t s = 0; s < numStripes; ++s) {
        MutexLock lock(stripeMu_[s]);
        for (std::uint32_t i = s; i < tlb_.size(); i += numStripes)
            tlb_[i].page = LogicalPageId::invalid();
    }
}

} // namespace envy
