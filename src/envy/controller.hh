/**
 * @file
 * The eNVy memory controller (paper §3, §5.1).
 *
 * Presents the flash array as a linear, word-addressable non-volatile
 * memory.  Reads translate through the MMU and go to flash or to the
 * SRAM write buffer.  Writes hit resident buffer pages in place;
 * otherwise a copy-on-write moves the page into the buffer (Fig 3):
 * copy the flash page to SRAM over the 256-byte-wide path, apply the
 * write, swing the page table, invalidate the old copy.  Flushing
 * pages from the buffer tail back to flash — and the cleaning that
 * makes room for those flushes — is delegated to the cleaning policy.
 *
 * The controller is purely functional: it reports how much device
 * time each operation consumed and lets the caller decide what that
 * means.  The timed simulation (envysim/timed_system.hh) drives
 * background flushing explicitly; in normal library use the
 * controller drains the buffer to its threshold automatically.
 */

#ifndef ENVY_ENVY_CONTROLLER_HH
#define ENVY_ENVY_CONTROLLER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <span>

#include "common/geometry.hh"
#include "common/thread_annotations.hh"
#include "envy/cleaner.hh"
#include "envy/mmu.hh"
#include "envy/policy/cleaning_policy.hh"
#include "envy/segment_space.hh"
#include "sim/stats.hh"
#include "sram/write_buffer.hh"

namespace envy {

/**
 * RAII holder of one controller shard lock (PR 8).  Identical to
 * MutexLock, but a distinct type: the envy_analyze lock-discipline
 * rule tracks ShardLock scopes and flags flash program/erase calls
 * made inside one (a shard lock serialises host access to a page
 * group; device mutation belongs under the structural lock).
 */
class ENVY_SCOPED_CAPABILITY ShardLock
{
  public:
    explicit ShardLock(Mutex &mu) ENVY_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~ShardLock() ENVY_RELEASE() { mu_.unlock(); }

    ShardLock(const ShardLock &) = delete;
    ShardLock &operator=(const ShardLock &) = delete;

  private:
    Mutex &mu_;
};

class Controller : public StatGroup
{
  public:
    Controller(const Geometry &geom, FlashArray &flash, Mmu &mmu,
               WriteBuffer &buffer, SegmentSpace &space,
               Cleaner &cleaner, CleaningPolicy &policy,
               bool auto_drain, StatGroup *parent = nullptr,
               obs::MetricsRegistry *metrics = nullptr);

    /** What a host access made the device do (for timing models). */
    struct AccessOutcome
    {
        bool hitSram = false;      //!< data was in the write buffer
        bool cow = false;          //!< a copy-on-write was performed
        std::uint64_t foregroundFlushes = 0; //!< full-buffer stalls
        Tick deviceBusy = 0; //!< flush/clean/erase time consumed
    };

    /**
     * Populate every logical page with zeroes, establishing the
     * array utilization.  Sequential puts consecutive runs of
     * logical pages in each segment; Striped deals them round-robin;
     * Aged additionally synthesises a steady-state segment picture —
     * most segments completely written (live data interleaved with
     * already-invalidated slots), free space concentrated in one
     * segment per @p aged_stride — so cleaning starts immediately
     * instead of after the array's initial free space has been
     * consumed (minutes of simulated time on a fresh 2 GB array).
     */
    enum class Placement { Sequential, Striped, Aged };
    void populate(Placement placement, std::uint32_t aged_stride = 16);

    /** Host-visible bytes. */
    std::uint64_t size() const { return geom_.logicalBytes().value(); }

    AccessOutcome read(Addr addr, std::span<std::uint8_t> out);
    AccessOutcome write(Addr addr, std::span<const std::uint8_t> in);

    /**
     * Lightweight host read for timing models: performs the MMU
     * translation and statistics of a word read without moving data.
     *
     * @return true if the translation missed the TLB (the table walk
     *         costs an extra SRAM access).
     */
    bool probeRead(Addr addr);

    /**
     * Flush the buffer's tail page to flash (cleaning as needed).
     *
     * @return device time consumed (program + any cleaning/erasing).
     */
    Tick flushOne();

    /** Drain the whole buffer (orderly shutdown). */
    void flushAll();

    /** True when background flushing has work to do. */
    bool
    needsBackgroundFlush() const
    {
        return buffer_.aboveThreshold();
    }

    /**
     * Switch the host-facing paths between the historical serial mode
     * and the PR 8 sharded concurrent mode.  Serial mode (workers <= 1
     * and no cleaners) keeps the exact single-lock code path, so its
     * output stays byte-identical with earlier releases.  Concurrent
     * mode shards host access by page, serialises device mutation
     * under a structural reader/writer lock, and replaces inline
     * cleaning with peek-flush + counted backpressure waits.  Call
     * before any worker or cleaner thread touches the store.
     */
    void setConcurrency(unsigned num_workers, unsigned num_cleaners);

    bool concurrent() const { return concurrent_; }

    /**
     * Couple the concurrent data path to a durable journal (PR 10):
     * SRAM-hit writers additionally hold the structural lock *shared*
     * across the slot mutation, so quiesce() — which the commit
     * pipeline uses to capture dirty SRAM ranges — excludes them and
     * never journals a torn write.  No-op in serial mode.  Call
     * before any worker thread touches the store.
     */
    void setPersistentConcurrent(bool on)
    {
        persistentConcurrent_ = on;
    }

    bool persistentConcurrent() const { return persistentConcurrent_; }

    /**
     * Run @p fn with every store mutator excluded: structural lock
     * exclusive in concurrent mode (flushes, cleans, COWs, and —
     * with setPersistentConcurrent() — SRAM-hit writes all hold it),
     * the serial mu_ otherwise.  The commit pipeline's dirty-capture
     * window; @p fn must not re-enter the controller.
     */
    void quiesce(const std::function<void()> &fn);

    /**
     * One increment of proactive cleaning on behalf of a background
     * cleaner thread (CleanerPool): ask the policy to clean ahead if
     * any partition is below @p watermark free pages.
     *
     * @return true if a segment was cleaned.
     */
    bool backgroundCleanOnce(PageCount watermark);

    /** Wake producers stalled on backpressure (room was made). */
    void notifyRoom();

    /**
     * Device time (flush programs + any cleaning performed inline)
     * this thread has consumed through this controller's flush paths.
     * Per-actor timelines for the concurrency bench.
     */
    static Tick threadDeviceBusy() { return tlDeviceBusy_; }

    /**
     * Hook poked when a producer hits backpressure (buffer full and
     * the policy has no ready destination); the cleaner pool uses it
     * to wake immediately instead of at its next watermark poll.
     */
    std::function<void()> backpressureHook;

    const Geometry &geom() const { return geom_; }
    WriteBuffer &buffer() { return buffer_; }
    SegmentSpace &space() { return space_; }
    Cleaner &cleaner() { return cleaner_; }
    Mmu &mmu() { return mmu_; }
    CleaningPolicy &policy() { return policy_; }

    /**
     * §6 transaction hook: consulted when a copy-on-write supersedes
     * a flash copy.  Returning true preserves the old copy as a
     * pinned shadow (for rollback) instead of invalidating it.
     */
    std::function<bool(LogicalPageId, FlashPageAddr)> cowShadowHook;

    Counter statHostReads;
    Counter statHostWrites;
    Counter statCows;
    Counter statBufferHits;
    Counter statForegroundFlushes;
    Counter statFlushRetries;

    // Observability metrics (docs/OBSERVABILITY.md).
    obs::Counter metHostReads;
    obs::Counter metHostWrites;
    obs::Counter metCows;
    obs::Counter metBufferHits;
    obs::Counter metForegroundFlushes;
    obs::Counter metFlushRetries;
    obs::Counter metBackpressureWaits; //!< producer waits for room
    obs::Counter metBackgroundCleans;  //!< cleans by the cleaner pool
    obs::Histogram metFlushTicks; //!< device time per flushOne()

  private:
    LogicalPageId pageOf(Addr addr) const
    {
        return LogicalPageId(addr / geom_.pageSize);
    }

    /** Copy a page into the write buffer (the COW of Fig 3). */
    BufferSlotId copyOnWrite(LogicalPageId page,
                             const PageTable::Location &stale_loc,
                             AccessOutcome &outcome)
        ENVY_REQUIRES(mu_);

    /**
     * flushOne() body; split out because copy-on-write (a full
     * buffer) and flushAll() flush while already holding mu_.
     */
    Tick flushOneLocked() ENVY_REQUIRES(mu_);

    /**
     * Shared flush machinery: program the tail page, swing the map,
     * pop.  @p peek_only asks the policy only for a destination that
     * already has room (never cleans); when none exists, *no_room is
     * set and nothing is mutated.  Callers hold mu_ (serial mode) or
     * structMu_ exclusive (concurrent mode) — annotated out of the
     * analysis because it serves both lock regimes.
     */
    Tick flushTailCore(bool peek_only, bool *no_room)
        ENVY_NO_THREAD_SAFETY_ANALYSIS;

    /**
     * COW body shared by the serial and concurrent paths (the caller
     * guarantees buffer room and a current @p loc under its lock
     * regime).
     */
    BufferSlotId cowCore(LogicalPageId page,
                         const PageTable::Location &loc,
                         AccessOutcome &outcome)
        ENVY_NO_THREAD_SAFETY_ANALYSIS;

    // Concurrent-mode twins of the host-facing paths (PR 8).
    AccessOutcome readConcurrent(Addr addr,
                                 std::span<std::uint8_t> out);
    AccessOutcome writeConcurrent(Addr addr,
                                  std::span<const std::uint8_t> in);
    void writePageConcurrent(LogicalPageId page,
                             std::span<const std::uint8_t> in,
                             std::uint32_t off, AccessOutcome &outcome)
        ENVY_NO_THREAD_SAFETY_ANALYSIS;
    /**
     * Apply an SRAM-hit write under the slot's stripe, revalidating
     * ownership.  @return false if the slot was recycled (caller
     * retranslates).  Annotated out because the stripe is picked
     * dynamically and the caller may wrap it in a shared structural
     * lock (persistent-concurrent mode).
     */
    bool hitWriteLocked(LogicalPageId page, BufferSlotId slot,
                        std::span<const std::uint8_t> in,
                        std::uint32_t off, AccessOutcome &outcome)
        ENVY_NO_THREAD_SAFETY_ANALYSIS;
    /** Stall until the full buffer has room (counted backpressure). */
    void makeRoomBlocking(AccessOutcome &outcome);
    /** Drain above-threshold occupancy without ever cleaning. */
    void drainOpportunistic();
    void flushAllConcurrent();

    Mutex &shardMuFor(LogicalPageId page)
    {
        return shardMu_[page.value() % numShards];
    }

    void checkRange(Addr addr, std::size_t len) const;

    Geometry geom_;
    FlashArray &flash_;
    Mmu &mmu_;
    WriteBuffer &buffer_;
    SegmentSpace &space_;
    Cleaner &cleaner_;
    CleaningPolicy &policy_;
    bool autoDrain_;

    // Serialises the host-facing mutation paths (read/write/flush)
    // and guards the bounce buffer in *serial* mode.  Everything the
    // controller calls below — cleaner, space, buffer — locks itself.
    mutable Mutex mu_;
    std::vector<std::uint8_t> scratch_ ENVY_GUARDED_BY(mu_);

    // --- PR 8 concurrent mode ------------------------------------
    // Lock order (docs/INTERNALS.md): shard lock -> structMu_ ->
    // write-buffer stripe -> component mutexes (buffer/space/cleaner
    // own mu_, MMU stripes).  Shard locks serialise host access per
    // page group; structMu_ exclusive serialises all device mutation
    // (COW, flush, clean); structMu_ shared covers host flash reads
    // against concurrent erases.
    bool concurrent_ = false;
    bool persistentConcurrent_ = false;
    unsigned numCleaners_ = 0;
    static constexpr std::uint64_t numShards = 64;
    std::deque<Mutex> shardMu_;
    SharedMutex structMu_;

    // Backpressure: producers wait here when the buffer is full and
    // the policy has no ready destination; flushers and background
    // cleaners notify after making room.
    Mutex waitMu_;
    std::condition_variable_any roomCv_;

    static thread_local Tick tlDeviceBusy_;
};

} // namespace envy

#endif // ENVY_ENVY_CONTROLLER_HH
