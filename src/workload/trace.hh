/**
 * @file
 * Recording and replaying storage access traces.
 *
 * Useful for regression tests (replay a captured workload against two
 * configurations and compare), for feeding the policy simulator with
 * externally produced write streams, and for the trace_tool example.
 * The on-disk format is a little-endian binary: a 16-byte header
 * ("ENVYTRC1", count) followed by {addr:8, bytes:2, flags:1, pad:5}
 * records.
 */

#ifndef ENVY_WORKLOAD_TRACE_HH
#define ENVY_WORKLOAD_TRACE_HH

#include <string>
#include <vector>

#include "workload/tpca.hh"

namespace envy {

class Trace
{
  public:
    void append(const StorageAccess &a) { accesses_.push_back(a); }
    void
    append(Addr addr, std::uint16_t bytes, bool is_write)
    {
        accesses_.push_back({addr, bytes, is_write});
    }

    std::size_t size() const { return accesses_.size(); }
    bool empty() const { return accesses_.empty(); }
    const StorageAccess &operator[](std::size_t i) const
    {
        return accesses_[i];
    }

    auto begin() const { return accesses_.begin(); }
    auto end() const { return accesses_.end(); }

    std::uint64_t writeCount() const;
    std::uint64_t readCount() const;

    /** Serialise to a file; fatals on I/O errors. */
    void save(const std::string &path) const;
    /** Load from a file; fatals on I/O or format errors. */
    static Trace load(const std::string &path);

  private:
    std::vector<StorageAccess> accesses_;
};

} // namespace envy

#endif // ENVY_WORKLOAD_TRACE_HH
