/**
 * @file
 * Bimodal page-write workload (paper §4, Figures 8-10).
 *
 * The paper labels localities "x/y": y% of all accesses go to the
 * first x% of the data, the remaining (100-y)% spread uniformly over
 * the rest.  "50/50" is uniform; "5/95" is very hot.  Only writes
 * matter to cleaning (§4.1), so the workload is a stream of page
 * writes.
 */

#ifndef ENVY_WORKLOAD_BIMODAL_HH
#define ENVY_WORKLOAD_BIMODAL_HH

#include <string>

#include "common/types.hh"
#include "sim/random.hh"

namespace envy {

/** A locality spec like "10/90". */
struct LocalitySpec
{
    double hotFraction = 0.5; //!< x/100: fraction of data that is hot
    double hotAccess = 0.5;   //!< y/100: fraction of accesses to it

    /** Parse "x/y"; fatals on malformed input. */
    static LocalitySpec parse(const std::string &text);

    std::string label() const;
    bool uniform() const { return hotAccess <= hotFraction; }
};

class BimodalWriteWorkload
{
  public:
    BimodalWriteWorkload(std::uint64_t logical_pages,
                         const LocalitySpec &spec, std::uint64_t seed);

    /** Next page to (over)write. */
    LogicalPageId nextPage();

    const LocalitySpec &spec() const { return spec_; }
    std::uint64_t logicalPages() const { return picker_.population(); }

  private:
    LocalitySpec spec_;
    BimodalPicker picker_;
    Rng rng_;
};

} // namespace envy

#endif // ENVY_WORKLOAD_BIMODAL_HH
