#include "workload/tpca.hh"

#include "common/logging.hh"

namespace envy {

TpcaConfig
TpcaConfig::forStoreBytes(std::uint64_t bytes, std::uint64_t slack)
{
    // Per account: one 100-byte record plus its share of the account
    // tree; tellers and branches add about 1/1000 and 1/10000 of
    // that again.  Iterate once to let the tree levels settle.
    TpcaConfig cfg;
    ENVY_ASSERT(bytes > slack, "store too small for TPC-A");
    const std::uint64_t budget = bytes - slack;
    std::uint64_t accounts = budget / (cfg.recordBytes + 10);
    for (int pass = 0; pass < 4; ++pass) {
        cfg.numAccounts = std::max<std::uint64_t>(accounts, 1);
        TpcaWorkload probe(cfg, 1);
        const std::uint64_t foot = probe.footprintBytes();
        if (foot > budget) {
            accounts = accounts * 95 / 100;
        } else if (budget - foot > budget / 50) {
            accounts += (budget - foot) / (cfg.recordBytes + 10);
        } else {
            break;
        }
    }
    cfg.numAccounts = std::max<std::uint64_t>(accounts, 1);
    return cfg;
}

BTreeShape::BTreeShape(std::uint64_t keys, std::uint32_t fanout,
                       std::uint32_t page_size, Addr base)
    : keys_(keys), fanout_(fanout), pageSize_(page_size), base_(base)
{
    ENVY_ASSERT(keys > 0 && fanout > 1, "degenerate tree");
    // Levels: smallest L with fanout^L >= keys (leaves hold fanout
    // entries each); a single root still counts as one level.
    levels_ = 1;
    std::uint64_t reach = fanout_;
    while (reach < keys_) {
        // Guard against overflow for absurd key counts.
        if (reach > keys_ / fanout_ + 1)
            reach = keys_;
        else
            reach *= fanout_;
        ++levels_;
    }

    levelBase_.resize(levels_);
    keysPerNode_.resize(levels_);
    totalNodes_ = 0;
    // Level l (0 = root) has ceil(keys / fanout^(levels-l)) nodes;
    // each covers fanout^(levels-l) keys.
    for (std::uint32_t l = 0; l < levels_; ++l) {
        std::uint64_t span = 1;
        for (std::uint32_t i = 0; i < levels_ - l; ++i) {
            if (span > keys_)
                break;
            span *= fanout_;
        }
        keysPerNode_[l] = span;
        levelBase_[l] = totalNodes_;
        totalNodes_ += (keys_ + span - 1) / span;
    }
}

Addr
BTreeShape::nodeAddr(std::uint32_t l, std::uint64_t key) const
{
    ENVY_ASSERT(l < levels_ && key < keys_, "bad tree lookup");
    const std::uint64_t idx = key / keysPerNode_[l];
    return base_ + (levelBase_[l] + idx) * pageSize_;
}

TpcaWorkload::TpcaWorkload(const TpcaConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    ENVY_ASSERT(cfg.numAccounts > 0, "TPC-A needs accounts");
    const std::uint64_t branches = cfg_.numBranches();
    const std::uint64_t tellers = cfg_.numTellers();

    Addr cursor = 0;
    auto reserve = [&cursor](std::uint64_t bytes) {
        const Addr at = cursor;
        cursor += bytes;
        return at;
    };

    branchRecBase_ = reserve(branches * cfg_.recordBytes);
    tellerRecBase_ = reserve(tellers * cfg_.recordBytes);
    accountRecBase_ = reserve(cfg_.numAccounts * cfg_.recordBytes);

    branchTree_ = BTreeShape(branches, cfg_.treeFanout, cfg_.pageSize,
                             reserve(0));
    cursor += branchTree_.bytes();
    tellerTree_ = BTreeShape(tellers, cfg_.treeFanout, cfg_.pageSize,
                             reserve(0));
    cursor += tellerTree_.bytes();
    accountTree_ = BTreeShape(cfg_.numAccounts, cfg_.treeFanout,
                              cfg_.pageSize, reserve(0));
    cursor += accountTree_.bytes();

    footprint_ = cursor;
}

Addr
TpcaWorkload::accountRecordAddr(std::uint64_t id) const
{
    return accountRecBase_ + id * cfg_.recordBytes;
}

Addr
TpcaWorkload::tellerRecordAddr(std::uint64_t id) const
{
    return tellerRecBase_ + id * cfg_.recordBytes;
}

Addr
TpcaWorkload::branchRecordAddr(std::uint64_t id) const
{
    return branchRecBase_ + id * cfg_.recordBytes;
}

void
TpcaWorkload::emitSearch(const BTreeShape &tree, std::uint64_t key,
                         std::vector<StorageAccess> &out) const
{
    for (std::uint32_t l = 0; l < tree.levels(); ++l) {
        const Addr node = tree.nodeAddr(l, key);
        // Binary-search probes within the one-page node.
        for (std::uint32_t p = 0; p < cfg_.probesPerNode; ++p) {
            const Addr off =
                (p * 61) % (cfg_.pageSize - cfg_.wordBytes);
            out.push_back({node + off,
                           static_cast<std::uint16_t>(cfg_.wordBytes),
                           false});
        }
    }
}

void
TpcaWorkload::emitRecordUpdate(Addr record,
                               std::vector<StorageAccess> &out) const
{
    for (std::uint32_t w = 0; w < cfg_.recordReadWords; ++w)
        out.push_back({record + w * cfg_.wordBytes,
                       static_cast<std::uint16_t>(cfg_.wordBytes),
                       false});
    for (std::uint32_t w = 0; w < cfg_.recordWriteWords; ++w)
        out.push_back({record + w * cfg_.wordBytes,
                       static_cast<std::uint16_t>(cfg_.wordBytes),
                       true});
}

std::uint64_t
TpcaWorkload::nextTransaction(std::vector<StorageAccess> &out)
{
    out.clear();
    // Uniform account (paper §5.2); the teller and branch are the
    // ones responsible for it.
    const std::uint64_t account = rng_.below(cfg_.numAccounts);
    const std::uint64_t teller = account / cfg_.accountsPerTeller;
    const std::uint64_t branch = teller / cfg_.tellersPerBranch;

    emitSearch(branchTree_, branch, out);
    emitRecordUpdate(branchRecordAddr(branch), out);
    emitSearch(tellerTree_, teller, out);
    emitRecordUpdate(tellerRecordAddr(teller), out);
    emitSearch(accountTree_, account, out);
    emitRecordUpdate(accountRecordAddr(account), out);
    return account;
}

Tick
TpcaWorkload::nextInterarrival(double rate)
{
    ENVY_ASSERT(rate > 0.0, "nonpositive transaction rate");
    return static_cast<Tick>(rng_.exponential(1e9 / rate));
}

} // namespace envy
