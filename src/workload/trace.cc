#include "workload/trace.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace envy {

namespace {
constexpr char magic[8] = {'E', 'N', 'V', 'Y', 'T', 'R', 'C', '1'};
}

std::uint64_t
Trace::writeCount() const
{
    std::uint64_t n = 0;
    for (const auto &a : accesses_)
        n += a.isWrite ? 1 : 0;
    return n;
}

std::uint64_t
Trace::readCount() const
{
    return accesses_.size() - writeCount();
}

void
Trace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        ENVY_FATAL("trace: cannot open '", path, "' for writing");

    const std::uint64_t count = accesses_.size();
    std::fwrite(magic, 1, sizeof(magic), f);
    std::fwrite(&count, sizeof(count), 1, f);
    for (const auto &a : accesses_) {
        std::uint8_t rec[16] = {};
        std::memcpy(rec, &a.addr, 8);
        std::memcpy(rec + 8, &a.bytes, 2);
        rec[10] = a.isWrite ? 1 : 0;
        std::fwrite(rec, 1, sizeof(rec), f);
    }
    if (std::fclose(f) != 0)
        ENVY_FATAL("trace: error writing '", path, "'");
}

Trace
Trace::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        ENVY_FATAL("trace: cannot open '", path, "'");

    char m[8];
    std::uint64_t count = 0;
    if (std::fread(m, 1, sizeof(m), f) != sizeof(m) ||
        std::memcmp(m, magic, sizeof(magic)) != 0 ||
        std::fread(&count, sizeof(count), 1, f) != 1) {
        std::fclose(f);
        ENVY_FATAL("trace: '", path, "' is not an eNVy trace file");
    }

    Trace t;
    t.accesses_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint8_t rec[16];
        if (std::fread(rec, 1, sizeof(rec), f) != sizeof(rec)) {
            std::fclose(f);
            ENVY_FATAL("trace: file '", path, "' is truncated");
        }
        StorageAccess a;
        std::memcpy(&a.addr, rec, 8);
        std::memcpy(&a.bytes, rec + 8, 2);
        a.isWrite = rec[10] != 0;
        t.accesses_.push_back(a);
    }
    std::fclose(f);
    return t;
}

} // namespace envy
