#include "workload/zipf.hh"

#include <cmath>

#include "common/logging.hh"

namespace envy {

namespace {

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfPicker::ZipfPicker(std::uint64_t population, double theta)
    : population_(population), theta_(theta)
{
    ENVY_ASSERT(population_ > 0, "workload: zipf over empty range");
    ENVY_ASSERT(theta_ > 0.0 && theta_ < 1.0,
                "workload: zipf theta ", theta_, " outside (0, 1)");
    zetan_ = zeta(population_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(population_),
                           1.0 - theta_)) /
           (1.0 - zeta(2, theta_) / zetan_);
}

std::uint64_t
ZipfPicker::pick(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto r = static_cast<std::uint64_t>(
        static_cast<double>(population_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r >= population_ ? population_ - 1 : r;
}

} // namespace envy
