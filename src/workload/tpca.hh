/**
 * @file
 * TPC-A storage workload (paper §5.2, Figure 12).
 *
 * The paper's simulator is driven by the *I/O stream* of the TPC-A
 * banking benchmark: per bank 10 tellers, per teller 10,000 accounts;
 * 100-byte balance records for each entity; each transaction searches
 * three B-tree indices (32 entries per node — exactly one 256-byte
 * page per node) and updates the three records.  Account numbers are
 * uniform, arrivals exponential.  Like the paper we make no claim
 * about end-to-end TPC ratings — this models the storage accesses.
 *
 * The generator lays the database out in the eNVy linear address
 * space (records packed at 100 bytes, tree nodes one page each) and
 * emits, per transaction, the exact word-sized reads and writes the
 * host would issue.  At the paper's 2 GB scale this is 15.5 million
 * account records and index trees of 2/3/5 levels.
 */

#ifndef ENVY_WORKLOAD_TPCA_HH
#define ENVY_WORKLOAD_TPCA_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/random.hh"

namespace envy {

struct TpcaConfig
{
    std::uint64_t numAccounts = 0;
    std::uint32_t accountsPerTeller = 10000;
    std::uint32_t tellersPerBranch = 10;

    std::uint32_t recordBytes = 100;
    std::uint32_t pageSize = 256;   //!< node size == page size
    std::uint32_t treeFanout = 32;  //!< entries per node (Fig 12)

    std::uint32_t wordBytes = 4;    //!< host bus word (32-bit RISC)
    /** Word probes per B-tree node visited (binary search of 32,
     *  key compare included). */
    std::uint32_t probesPerNode = 6;
    /** Words read from a record before updating it. */
    std::uint32_t recordReadWords = 8;
    /** Words written back (the balance field). */
    std::uint32_t recordWriteWords = 1;

    std::uint64_t numTellers() const
    {
        return (numAccounts + accountsPerTeller - 1) / accountsPerTeller;
    }
    std::uint64_t numBranches() const
    {
        const std::uint64_t t = numTellers();
        return (t + tellersPerBranch - 1) / tellersPerBranch;
    }

    /**
     * Size the database for a store of @p bytes, mimicking the
     * paper's "the database can be scaled to fit any storage system":
     * records plus index nodes fill the store, leaving @p slack
     * bytes unused.
     */
    static TpcaConfig forStoreBytes(std::uint64_t bytes,
                                    std::uint64_t slack = 0);
};

/** One word-sized storage access of a transaction. */
struct StorageAccess
{
    Addr addr;
    std::uint16_t bytes;
    bool isWrite;
};

/**
 * A complete 32-ary index shape: node n of level l sits at a fixed
 * page; looking up key k visits one node per level.
 */
class BTreeShape
{
  public:
    BTreeShape() = default;
    BTreeShape(std::uint64_t keys, std::uint32_t fanout,
               std::uint32_t page_size, Addr base);

    std::uint32_t levels() const { return levels_; }
    std::uint64_t totalNodes() const { return totalNodes_; }
    std::uint64_t bytes() const
    {
        return totalNodes_ * pageSize_;
    }

    /** Page address of the level-@p l node on @p key's search path. */
    Addr nodeAddr(std::uint32_t l, std::uint64_t key) const;

  private:
    std::uint64_t keys_ = 0;
    std::uint32_t fanout_ = 32;
    std::uint32_t pageSize_ = 256;
    Addr base_ = 0;
    std::uint32_t levels_ = 0;
    std::uint64_t totalNodes_ = 0;
    /** Nodes in levels above l (prefix sums) and keys per node. */
    std::vector<std::uint64_t> levelBase_;
    std::vector<std::uint64_t> keysPerNode_;
};

class TpcaWorkload
{
  public:
    TpcaWorkload(const TpcaConfig &cfg, std::uint64_t seed);

    const TpcaConfig &config() const { return cfg_; }

    /** Bytes of store the database occupies. */
    std::uint64_t footprintBytes() const { return footprint_; }

    /** Index levels, for checking against the paper's Fig 12. */
    std::uint32_t branchLevels() const { return branchTree_.levels(); }
    std::uint32_t tellerLevels() const { return tellerTree_.levels(); }
    std::uint32_t accountLevels() const
    {
        return accountTree_.levels();
    }

    /**
     * Generate the storage accesses of one transaction into @p out
     * (cleared first).  Returns the account id used.
     */
    std::uint64_t nextTransaction(std::vector<StorageAccess> &out);

    /** Exponential inter-arrival time for @p rate transactions/s. */
    Tick nextInterarrival(double rate);

    Addr accountRecordAddr(std::uint64_t id) const;
    Addr tellerRecordAddr(std::uint64_t id) const;
    Addr branchRecordAddr(std::uint64_t id) const;

  private:
    void emitSearch(const BTreeShape &tree, std::uint64_t key,
                    std::vector<StorageAccess> &out) const;
    void emitRecordUpdate(Addr record, std::vector<StorageAccess> &out)
        const;

    TpcaConfig cfg_;
    Rng rng_;

    Addr branchRecBase_ = 0;
    Addr tellerRecBase_ = 0;
    Addr accountRecBase_ = 0;
    BTreeShape branchTree_;
    BTreeShape tellerTree_;
    BTreeShape accountTree_;
    std::uint64_t footprint_ = 0;
};

} // namespace envy

#endif // ENVY_WORKLOAD_TPCA_HH
