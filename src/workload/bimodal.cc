#include "workload/bimodal.hh"

#include <cstdio>

#include "common/logging.hh"

namespace envy {

LocalitySpec
LocalitySpec::parse(const std::string &text)
{
    double x = 0.0, y = 0.0;
    if (std::sscanf(text.c_str(), "%lf/%lf", &x, &y) != 2 || x <= 0.0 ||
        x > 100.0 || y < 0.0 || y > 100.0)
        ENVY_FATAL("workload: bad locality spec '", text,
                   "'; expected e.g. 10/90");
    return LocalitySpec{x / 100.0, y / 100.0};
}

std::string
LocalitySpec::label() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g/%g", hotFraction * 100.0,
                  hotAccess * 100.0);
    return buf;
}

BimodalWriteWorkload::BimodalWriteWorkload(std::uint64_t logical_pages,
                                           const LocalitySpec &spec,
                                           std::uint64_t seed)
    : spec_(spec),
      picker_(logical_pages, spec.hotFraction, spec.hotAccess),
      rng_(seed)
{
}

LogicalPageId
BimodalWriteWorkload::nextPage()
{
    return LogicalPageId(picker_.pick(rng_));
}

} // namespace envy
