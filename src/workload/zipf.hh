/**
 * @file
 * Zipfian key selection for skewed serving traffic.
 *
 * The classic power-law popularity distribution: rank r is drawn with
 * probability proportional to 1 / r^theta.  The generator uses the
 * standard Gray et al. construction ("Quickly Generating
 * Billion-Record Synthetic Databases", SIGMOD '94): one O(n) zeta
 * precomputation at construction, then O(1) draws — millions of keys
 * cost a few milliseconds of setup and nothing per sample.  theta in
 * (0, 1); 0.99 is the YCSB-style default used by the envy-serve load
 * generator (docs/SERVING.md §6).
 *
 * Draws are deterministic given the Rng, like every workload in this
 * tree.
 */

#ifndef ENVY_WORKLOAD_ZIPF_HH
#define ENVY_WORKLOAD_ZIPF_HH

#include <cstdint>

#include "sim/random.hh"

namespace envy {

class ZipfPicker
{
  public:
    /**
     * @param population draws land in [0, population)
     * @param theta      skew in (0, 1); larger = more skewed
     */
    ZipfPicker(std::uint64_t population, double theta);

    std::uint64_t pick(Rng &rng) const;

    std::uint64_t population() const { return population_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t population_;
    double theta_;
    double zetan_;   //!< zeta(n, theta)
    double alpha_;   //!< 1 / (1 - theta)
    double eta_;     //!< Gray's eta shortcut constant
};

} // namespace envy

#endif // ENVY_WORKLOAD_ZIPF_HH
