#include "faults/fault_injector.hh"

#include <algorithm>

#include "flash/flash_array.hh"

namespace envy {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed)
{
    // Ordinal lists are matched by binary search.
    std::sort(plan_.failProgramOps.begin(), plan_.failProgramOps.end());
    std::sort(plan_.failEraseOps.begin(), plan_.failEraseOps.end());
}

FaultInjector::~FaultInjector()
{
    disarm();
}

void
FaultInjector::arm()
{
    if (armed_)
        return;
    previous_ = crash_points::setSink(this);
    armed_ = true;
}

void
FaultInjector::disarm()
{
    if (armed_) {
        crash_points::setSink(previous_);
        previous_ = nullptr;
        armed_ = false;
    }
    if (flash_) {
        flash_->programFaultHook = nullptr;
        flash_->eraseFaultHook = nullptr;
        flash_ = nullptr;
    }
}

void
FaultInjector::attachFlash(FlashArray &flash)
{
    flash_ = &flash;
    flash.programFaultHook = [this](SegmentId, SlotId) {
        return shouldFailProgram();
    };
    flash.eraseFaultHook = [this](SegmentId) {
        return shouldFailErase();
    };
}

void
FaultInjector::onCrashPoint(const char *name)
{
    const std::uint64_t n = ++hits_[name];
    if (!powerLossFired_ && !plan_.crashPoint.empty() &&
        plan_.crashPoint == name && n == plan_.crashOccurrence) {
        powerLossFired_ = true;
        throw PowerLoss{name, n};
    }
}

std::uint64_t
FaultInjector::hits(const std::string &point) const
{
    const auto it = hits_.find(point);
    return it == hits_.end() ? 0 : it->second;
}

bool
FaultInjector::shouldFailProgram()
{
    const std::uint64_t n = ++programAttempts_;
    bool fail = std::binary_search(plan_.failProgramOps.begin(),
                                   plan_.failProgramOps.end(), n);
    if (!fail && plan_.programFailureRate > 0.0)
        fail = rng_.chance(plan_.programFailureRate);
    if (fail)
        ++programFailures_;
    return fail;
}

bool
FaultInjector::shouldFailErase()
{
    const std::uint64_t n = ++eraseAttempts_;
    bool fail = std::binary_search(plan_.failEraseOps.begin(),
                                   plan_.failEraseOps.end(), n);
    if (!fail && plan_.eraseFailureRate > 0.0)
        fail = rng_.chance(plan_.eraseFailureRate);
    if (fail)
        ++eraseFailures_;
    return fail;
}

} // namespace envy
