#include "faults/fault_injector.hh"

#include <algorithm>

#include "flash/flash_array.hh"
#include "obs/trace.hh"

namespace envy {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed)
{
    // Ordinal lists are matched by binary search.
    std::sort(plan_.failProgramOps.begin(), plan_.failProgramOps.end());
    std::sort(plan_.failEraseOps.begin(), plan_.failEraseOps.end());
}

FaultInjector::~FaultInjector()
{
    disarm();
}

void
FaultInjector::arm()
{
    if (armed_)
        return;
    previous_ = crash_points::setSink(this);
    armed_ = true;
}

void
FaultInjector::disarm()
{
    if (armed_) {
        crash_points::setSink(previous_);
        previous_ = nullptr;
        armed_ = false;
    }
    if (flash_) {
        flash_->programFaultHook = nullptr;
        flash_->eraseFaultHook = nullptr;
        flash_ = nullptr;
    }
}

void
FaultInjector::attachFlash(FlashArray &flash)
{
    flash_ = &flash;
    flash.programFaultHook = [this](SegmentId, SlotId) {
        return shouldFailProgram();
    };
    flash.eraseFaultHook = [this](SegmentId) {
        return shouldFailErase();
    };
}

void
FaultInjector::observeMetrics(obs::MetricsRegistry *metrics)
{
    metProgramFailures =
        obs::counterOf(metrics, "fault.program_failures", "programs",
                       "program spec-failures injected");
    metEraseFailures =
        obs::counterOf(metrics, "fault.erase_failures", "erases",
                       "transient erase failures injected");
    metPowerLosses =
        obs::counterOf(metrics, "fault.power_losses", "crashes",
                       "planned power losses thrown");
}

void
FaultInjector::onCrashPoint(const char *name)
{
    const std::uint64_t n = ++hits_[name];
    if (!powerLossFired_ && !plan_.crashPoint.empty() &&
        plan_.crashPoint == name && n == plan_.crashOccurrence) {
        powerLossFired_ = true;
        metPowerLosses.add();
        ENVY_TRACE("fault.power_loss", obs::tv("point", name),
                   obs::tv("occurrence", n));
        throw PowerLoss{name, n};
    }
}

std::uint64_t
FaultInjector::hits(const std::string &point) const
{
    const auto it = hits_.find(point);
    return it == hits_.end() ? 0 : it->second;
}

bool
FaultInjector::shouldFailProgram()
{
    const std::uint64_t n = ++programAttempts_;
    bool fail = std::binary_search(plan_.failProgramOps.begin(),
                                   plan_.failProgramOps.end(), n);
    if (!fail && plan_.programFailureRate > 0.0)
        fail = rng_.chance(plan_.programFailureRate);
    if (fail) {
        ++programFailures_;
        metProgramFailures.add();
        ENVY_TRACE("fault.program_fail", obs::tv("attempt", n));
    }
    return fail;
}

bool
FaultInjector::shouldFailErase()
{
    const std::uint64_t n = ++eraseAttempts_;
    bool fail = std::binary_search(plan_.failEraseOps.begin(),
                                   plan_.failEraseOps.end(), n);
    if (!fail && plan_.eraseFailureRate > 0.0)
        fail = rng_.chance(plan_.eraseFailureRate);
    if (fail) {
        ++eraseFailures_;
        metEraseFailures.add();
        ENVY_TRACE("fault.erase_fail", obs::tv("attempt", n));
    }
    return fail;
}

} // namespace envy
