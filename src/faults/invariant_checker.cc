#include "faults/invariant_checker.hh"

#include <sstream>

#include "envy/envy_store.hh"

namespace envy {

namespace {

/** Collects formatted violation strings. */
class Log
{
  public:
    explicit Log(std::vector<std::string> &out) : out_(out) {}

    template <typename... Args>
    void
    operator()(Args &&...args)
    {
        std::ostringstream os;
        (os << ... << args);
        out_.push_back(os.str());
    }

  private:
    std::vector<std::string> &out_;
};

} // namespace

std::string
InvariantReport::summary() const
{
    std::string out;
    for (const auto &v : violations) {
        if (!out.empty())
            out += "; ";
        out += v;
    }
    return out;
}

InvariantReport
InvariantChecker::check(EnvyStore &store, Options opts)
{
    InvariantReport rep;
    Log bad(rep.violations);

    FlashArray &flash = store.flash();
    PageTable &pt = store.pageTable();
    WriteBuffer &buffer = store.writeBuffer();
    SegmentSpace &space = store.space();
    const Geometry &g = store.config().geom;
    const std::uint64_t nseg = flash.numSegments();
    const std::uint64_t pages = g.effectiveLogicalPages().value();
    const std::uint64_t seg_cap = flash.pagesPerSegment().value();

    // ---- persistent records are quiescent ------------------------
    if (space.cleanRecord().inProgress)
        bad("clean record still pending after recovery");
    if (const auto wr = space.wearRecord(); wr.stage != 0)
        bad("wear record still pending (stage ", wr.stage, ")");

    // ---- segment map is a bijection, reserve erased --------------
    std::vector<std::uint32_t> ownerOf(nseg, SegmentSpace::noLogical);
    for (std::uint32_t l = 0; l < space.numLogical(); ++l) {
        const SegmentId phys = space.physOf(l);
        if (!phys.valid() || phys.value() >= nseg) {
            bad("logical segment ", l, " maps to no physical segment");
            continue;
        }
        if (ownerOf[phys.value()] != SegmentSpace::noLogical) {
            bad("physical segment ", phys.value(),
                " claimed by logical segments ", ownerOf[phys.value()],
                " and ", l);
        }
        ownerOf[phys.value()] = l;
        if (space.logOf(phys) != l) {
            bad("logOf(", phys.value(), ") = ", space.logOf(phys),
                " but physOf(", l, ") points there");
        }
    }
    const SegmentId reserve = space.reserve();
    if (!reserve.valid() || reserve.value() >= nseg) {
        bad("reserve segment id is invalid");
    } else {
        if (ownerOf[reserve.value()] != SegmentSpace::noLogical) {
            bad("reserve segment ", reserve.value(),
                " is also mapped to logical segment ",
                ownerOf[reserve.value()]);
        }
        if (space.logOf(reserve) != SegmentSpace::noLogical)
            bad("logOf(reserve) is not noLogical");
        if (flash.usedSlots(reserve) != PageCount(0)) {
            bad("reserve segment ", reserve.value(), " is not erased (",
                flash.usedSlots(reserve), " used slots)");
        }
    }

    // ---- page table -> storage -----------------------------------
    for (std::uint64_t p = 0; p < pages; ++p) {
        const PageTable::Location loc = pt.lookup(LogicalPageId(p));
        switch (loc.kind) {
          case PageTable::LocKind::Flash: {
            ++rep.pagesInFlash;
            if (!loc.flash.segment.valid() ||
                loc.flash.segment.value() >= nseg ||
                loc.flash.slot.value() >= seg_cap) {
                bad("page ", p, " maps to an out-of-range flash slot");
                break;
            }
            const LogicalPageId owner = flash.pageOwner(loc.flash);
            if (!owner.valid() || owner.value() != p) {
                bad("page ", p, " maps to segment ",
                    loc.flash.segment.value(), " slot ",
                    loc.flash.slot.value(),
                    " which does not hold it");
            }
            if (flash.slotRetired(loc.flash))
                bad("page ", p, " maps to a retired slot");
            if (loc.flash.segment == reserve)
                bad("page ", p, " lives on the reserve segment");
            break;
          }
          case PageTable::LocKind::Sram: {
            ++rep.pagesInBuffer;
            const BufferSlotId slot = loc.sramSlot;
            if (slot.value() >= buffer.capacity()) {
                bad("page ", p, " maps to out-of-range buffer slot ",
                    slot);
            } else if (!buffer.slotResident(slot) ||
                       buffer.slotOwner(slot).value() != p) {
                bad("page ", p, " maps to buffer slot ", slot,
                    " which does not hold it");
            }
            break;
          }
          case PageTable::LocKind::Unmapped:
            break;
        }
    }

    // ---- storage -> page table (no lost/duplicated live pages) ---
    for (std::uint32_t s = 0; s < nseg; ++s) {
        const SegmentId seg{s};
        std::uint64_t live_here = 0, shadows_here = 0;
        flash.forEachLive(seg, [&](SlotId slot,
                                   LogicalPageId logical) {
            ++live_here;
            ++rep.liveSlots;
            if (logical.value() >= pages) {
                bad("segment ", s, " slot ", slot,
                    " owned by out-of-range page ", logical.value());
                return;
            }
            const PageTable::Location loc = pt.lookup(logical);
            const FlashPageAddr here{seg, slot};
            if (loc.kind != PageTable::LocKind::Flash ||
                !(loc.flash == here)) {
                bad("live slot ", s, "/", slot, " holds page ",
                    logical.value(),
                    " but is not the table's copy of it");
            }
        });
        flash.forEachShadow(seg, [&](SlotId) {
            ++shadows_here;
            ++rep.shadowSlots;
        });
        rep.retiredSlots += flash.retiredCount(seg).value();

        if (flash.liveCount(seg).value() != live_here + shadows_here) {
            bad("segment ", s, " live count ", flash.liveCount(seg),
                " but ", live_here + shadows_here,
                " live+shadow slots were found");
        }
        if ((flash.liveCount(seg) + flash.invalidCount(seg) +
             flash.freeSlots(seg) + flash.retiredCount(seg)).value() !=
            seg_cap) {
            bad("segment ", s, " slot accounting does not add up: ",
                flash.liveCount(seg), " live + ",
                flash.invalidCount(seg), " invalid + ",
                flash.freeSlots(seg), " free + ",
                flash.retiredCount(seg), " retired != ", seg_cap);
        }
        if (flash.retiredCount(seg) > PageCount(0)) {
            for (std::uint32_t slot = 0; slot < seg_cap; ++slot) {
                const FlashPageAddr addr{seg, SlotId(slot)};
                if (flash.slotRetired(addr) && flash.pageLive(addr))
                    bad("retired slot ", s, "/", slot, " holds data");
            }
        }
    }
    if (flash.totalLive().value() != rep.liveSlots + rep.shadowSlots) {
        bad("global live total ", flash.totalLive(), " but ",
            rep.liveSlots + rep.shadowSlots, " slots were found");
    }
    if (rep.pagesInFlash != rep.liveSlots) {
        bad("table maps ", rep.pagesInFlash, " pages to flash but ",
            rep.liveSlots, " live slots exist");
    }

    // ---- write buffer is a contiguous FIFO ring ------------------
    const std::uint32_t count = buffer.size();
    const std::uint32_t cap = buffer.capacity();
    const std::uint32_t tail = count ? buffer.tail().slot.value() : 0;
    for (std::uint32_t i = 0; i < cap; ++i) {
        const BufferSlotId slot((tail + i) % cap);
        if (i < count) {
            if (!buffer.slotResident(slot)) {
                bad("buffer ring has a hole at slot ", slot);
                continue;
            }
            const LogicalPageId owner = buffer.slotOwner(slot);
            const PageTable::Location loc = pt.lookup(owner);
            if (loc.kind != PageTable::LocKind::Sram ||
                loc.sramSlot != slot) {
                bad("buffer slot ", slot, " holds page ",
                    owner.value(),
                    " but is not the table's copy of it");
            }
        } else if (buffer.slotResident(slot)) {
            bad("resident buffer slot ", slot, " outside the ring");
        }
    }
    if (rep.pagesInBuffer != count) {
        bad("table maps ", rep.pagesInBuffer,
            " pages to SRAM but the buffer holds ", count);
    }

    if (opts.expectNoShadows && rep.shadowSlots != 0) {
        bad(rep.shadowSlots,
            " shadow slots survive where none were expected");
    }

    return rep;
}

} // namespace envy
