/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * A FaultPlan describes everything that will go wrong in a run:
 * program operations that spec-fail (by global attempt ordinal or at
 * a seeded random rate), erase operations that transiently fail the
 * same way, and at most one power loss, pinned to the N-th hit of a
 * named crash point.  The FaultInjector executes the plan: it is a
 * CrashSink for the crash-point side and arms the FlashArray's fault
 * hooks for the device side.  Same plan + same workload = same
 * faults, every time — the property the CrashPointExplorer builds
 * its reproducibility guarantee on.
 *
 * An injector with an empty plan is a pure recorder: it counts every
 * crash-point hit and device operation without perturbing anything,
 * which is how the explorer probes a workload to learn what there is
 * to crash.
 */

#ifndef ENVY_FAULTS_FAULT_INJECTOR_HH
#define ENVY_FAULTS_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "faults/crash_point.hh"
#include "obs/metrics.hh"
#include "sim/random.hh"

namespace envy {

class FlashArray;

struct FaultPlan
{
    std::uint64_t seed = 1; //!< drives the random failure rates

    /** Crash point to die at; empty = never lose power. */
    std::string crashPoint;
    /** Die at this (1-based) hit of crashPoint. */
    std::uint64_t crashOccurrence = 1;

    /** Program attempts (1-based global ordinals) that spec-fail. */
    std::vector<std::uint64_t> failProgramOps;
    /** Erase attempts (1-based global ordinals) that fail once. */
    std::vector<std::uint64_t> failEraseOps;

    /** Additional per-attempt random failure probabilities. */
    double programFailureRate = 0.0;
    double eraseFailureRate = 0.0;
};

class FaultInjector final : public CrashSink
{
  public:
    explicit FaultInjector(FaultPlan plan);
    ~FaultInjector() override;

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install as the global crash sink. */
    void arm();
    /** Restore the previous sink and detach any flash hooks. */
    void disarm();

    /** Arm the program/erase fault hooks of @p flash. */
    void attachFlash(FlashArray &flash);

    /**
     * Also publish injections into @p metrics (fault.* counters,
     * docs/OBSERVABILITY.md).  Call once, before the faults fire;
     * typically with the store's own registry so the injected-fault
     * counts land in the same snapshot as the repair work they cause.
     */
    void observeMetrics(obs::MetricsRegistry *metrics);

    // CrashSink
    void onCrashPoint(const char *name) override;

    const FaultPlan &plan() const { return plan_; }

    // ---- observations --------------------------------------------

    /** Crash-point hits recorded while armed, by name. */
    const std::map<std::string, std::uint64_t> &hitCounts() const
    {
        return hits_;
    }
    std::uint64_t hits(const std::string &point) const;

    std::uint64_t programAttempts() const { return programAttempts_; }
    std::uint64_t eraseAttempts() const { return eraseAttempts_; }
    std::uint64_t programFailuresInjected() const
    {
        return programFailures_;
    }
    std::uint64_t eraseFailuresInjected() const
    {
        return eraseFailures_;
    }
    /** True once the planned PowerLoss has been thrown. */
    bool powerLossFired() const { return powerLossFired_; }

  private:
    bool shouldFailProgram();
    bool shouldFailErase();

    FaultPlan plan_;
    Rng rng_;
    bool armed_ = false;
    CrashSink *previous_ = nullptr;
    FlashArray *flash_ = nullptr;

    std::map<std::string, std::uint64_t> hits_;
    obs::Counter metProgramFailures;
    obs::Counter metEraseFailures;
    obs::Counter metPowerLosses;
    std::uint64_t programAttempts_ = 0;
    std::uint64_t eraseAttempts_ = 0;
    std::uint64_t programFailures_ = 0;
    std::uint64_t eraseFailures_ = 0;
    bool powerLossFired_ = false;
};

} // namespace envy

#endif // ENVY_FAULTS_FAULT_INJECTOR_HH
