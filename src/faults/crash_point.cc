#include "faults/crash_point.hh"

#include <algorithm>
#include <mutex>

namespace envy {
namespace crash_points {

namespace detail {
thread_local CrashSink *sink = nullptr;
std::atomic<CrashSink *> globalSink{nullptr};
} // namespace detail

namespace {

/** Guards the registry: points register lazily from worker threads. */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::vector<std::string> &
registry()
{
    static std::vector<std::string> points = [] {
        // Canonical inventory of the crash points threaded through
        // the system.  The macro also registers dynamically, so a
        // point missing here still works — this list only guarantees
        // that allPoints() is complete before any code has run.
        return std::vector<std::string>{
            "ctl.cow.after_push",
            "ctl.cow.after_map",
            "ctl.cow.done",
            "ctl.flush.before_program",
            "ctl.flush.after_program_failure",
            "ctl.flush.after_program",
            "ctl.flush.after_map",
            "ctl.flush.done",
            "cleaner.clean.begin",
            "cleaner.relocate.after_program",
            "cleaner.relocate.after_map",
            "cleaner.relocate.done",
            "cleaner.shadow.after_program",
            "cleaner.shadow.done",
            "cleaner.clean.before_erase",
            "cleaner.clean.after_erase",
            "cleaner.clean.after_commit",
            "wear.rotate.begin",
            "wear.rotate.after_first_move",
            "wear.rotate.after_first_erase",
            "wear.rotate.after_second_move",
            "wear.rotate.after_second_erase",
            "wear.rotate.after_commit",
            "txn.commit.begin",
            "txn.commit.mid_release",
            "txn.abort.begin",
            "txn.abort.mid_restore",
            "persist.journal.after_flush",
            "persist.checkpoint.before_rename",
            "persist.checkpoint.after_rename",
        };
    }();
    return points;
}

} // namespace

const char *
registerPoint(const char *name)
{
    const std::lock_guard<std::mutex> lock(registryMutex());
    auto &points = registry();
    if (std::find(points.begin(), points.end(), name) == points.end())
        points.emplace_back(name);
    return name;
}

std::vector<std::string>
allPoints()
{
    std::vector<std::string> points;
    {
        const std::lock_guard<std::mutex> lock(registryMutex());
        points = registry();
    }
    std::sort(points.begin(), points.end());
    return points;
}

CrashSink *
setSink(CrashSink *sink)
{
    CrashSink *old = detail::sink;
    detail::sink = sink;
    return old;
}

CrashSink *
currentSink()
{
    return detail::sink;
}

CrashSink *
setGlobalSink(CrashSink *sink)
{
    return detail::globalSink.exchange(sink,
                                       std::memory_order_acq_rel);
}

} // namespace crash_points
} // namespace envy
