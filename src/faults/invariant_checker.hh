/**
 * @file
 * Whole-store structural invariants.
 *
 * After any quiescent point — and in particular after a recovery from
 * an injected power loss — the following must hold:
 *
 *  - the logical→physical segment map is a bijection and the reserve
 *    is a fully-erased segment outside it;
 *  - no clean or wear-rotation record is pending;
 *  - every page-table entry points at storage that agrees it holds
 *    that page (a live flash slot or a resident buffer slot), and
 *    every live flash slot / resident buffer slot is pointed back at
 *    by the table — no lost and no duplicated live pages;
 *  - retired slots hold nothing live;
 *  - the write buffer is a contiguous FIFO ring;
 *  - per-segment slot accounting (live + invalid + free + retired =
 *    capacity) and the global live total are consistent.
 *
 * The checker never mutates the store.  It reports human-readable
 * violations instead of asserting so the CrashPointExplorer can
 * attribute failures to the crash point that caused them.
 */

#ifndef ENVY_FAULTS_INVARIANT_CHECKER_HH
#define ENVY_FAULTS_INVARIANT_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace envy {

class EnvyStore;

struct InvariantReport
{
    std::vector<std::string> violations;

    // Census, for tests and the explorer's reporting.
    std::uint64_t pagesInFlash = 0;  //!< table entries in flash
    std::uint64_t pagesInBuffer = 0; //!< table entries in SRAM
    std::uint64_t liveSlots = 0;     //!< owned live flash slots
    std::uint64_t shadowSlots = 0;   //!< pinned §6 shadows
    std::uint64_t retiredSlots = 0;  //!< spec-failed slots

    bool ok() const { return violations.empty(); }
    /** All violations joined, for test failure messages. */
    std::string summary() const;
};

class InvariantChecker
{
  public:
    struct Options
    {
        /**
         * Demand shadowSlots == 0.  True after a recovery (the sweep
         * reclaims every shadow); false while transactions run.
         */
        bool expectNoShadows = false;
    };

    static InvariantReport check(EnvyStore &store, Options opts);
    static InvariantReport check(EnvyStore &store)
    {
        return check(store, Options{});
    }
};

} // namespace envy

#endif // ENVY_FAULTS_INVARIANT_CHECKER_HH
