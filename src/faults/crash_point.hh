/**
 * @file
 * Named crash points: the hooks the fault-injection subsystem uses to
 * cut execution at precisely-defined instants.
 *
 * The paper's central durability claim (§3.2–§3.4) is that eNVy
 * survives power failure at *any* instant because the battery-backed
 * SRAM page table is the single commit point.  To test that claim
 * systematically rather than at a few hand-picked spots, every
 * interesting ordering boundary in the controller, cleaner, wear
 * leveler and transaction manager is marked with
 *
 *     ENVY_CRASH_POINT("ctl.flush.after_program");
 *
 * In normal operation a crash point is one predicate check (no sink
 * installed — nothing happens).  A test or the CrashPointExplorer
 * installs a CrashSink; the sink sees every hit and may throw
 * PowerLoss to model the machine dying right there.  The exception
 * unwinds to the harness, which then runs Recovery::run against
 * whatever durable state (flash + battery-backed SRAM) was left
 * behind — exactly what a real power failure would present.
 *
 * Points register themselves on first execution; in addition the
 * canonical inventory (crash_point.cc) is pre-registered at startup
 * so allPoints() lists every point compiled into the system, not
 * only the ones a particular workload happens to reach.
 *
 * Each simulated controller is single-threaded, like the paper's,
 * but the experiment harness runs many isolated systems on worker
 * threads (src/envysim/parallel.hh).  The sink is therefore
 * thread-local — a FaultInjector armed on one worker only sees the
 * crash points its own System hits — and the name registry, the one
 * piece of genuinely shared state, takes a mutex.
 *
 * The concurrent store inverts that shape: ONE system, MANY threads
 * (host workers, the cleaner pool, the commit pipeline's epoch
 * thread), all of whose crash points belong to the same experiment.
 * For that case a process-wide fallback sink (setGlobalSink) sees
 * hits from every thread that has no thread-local sink installed.
 * The thread-local sink, when present, still wins — a worker running
 * an isolated System keeps its isolation even if a global sink is
 * armed elsewhere in the process.
 */

#ifndef ENVY_FAULTS_CRASH_POINT_HH
#define ENVY_FAULTS_CRASH_POINT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace envy {

/** Thrown by a sink to model power dying at a crash point. */
struct PowerLoss
{
    const char *point;         //!< crash point that fired
    std::uint64_t occurrence;  //!< 1-based hit count at the throw
};

/** Receives every crash-point hit while installed. */
class CrashSink
{
  public:
    virtual ~CrashSink() = default;
    /** May throw PowerLoss to cut execution here. */
    virtual void onCrashPoint(const char *name) = 0;
};

namespace crash_points {

/** Add @p name to the global registry (idempotent); returns name. */
const char *registerPoint(const char *name);

/** All registered point names, sorted. */
std::vector<std::string> allPoints();

/**
 * Install @p sink for the calling thread (nullptr to clear).
 * Returns the previous sink.  Sinks on other threads are unaffected.
 */
CrashSink *setSink(CrashSink *sink);

CrashSink *currentSink();

/**
 * Install @p sink for EVERY thread that has no thread-local sink
 * (nullptr to clear).  Returns the previous global sink.  The sink
 * must be thread-safe: the concurrent store hits points from host
 * workers, cleaners and the commit pipeline simultaneously.
 */
CrashSink *setGlobalSink(CrashSink *sink);

namespace detail {
extern thread_local CrashSink *sink; // one sink per worker thread
extern std::atomic<CrashSink *> globalSink; // process-wide fallback

struct Registrar
{
    explicit Registrar(const char *name) { registerPoint(name); }
};
} // namespace detail

inline void
hit(const char *name)
{
    if (detail::sink) {
        detail::sink->onCrashPoint(name);
        return;
    }
    if (CrashSink *g =
            detail::globalSink.load(std::memory_order_acquire))
        g->onCrashPoint(name);
}

} // namespace crash_points
} // namespace envy

/**
 * Mark a crash point.  Use only at statement scope inside a function;
 * `name` must be a string literal, unique per point, dotted
 * `component.operation.moment` style.
 */
#define ENVY_CRASH_POINT(name)                                         \
    do {                                                               \
        static ::envy::crash_points::detail::Registrar                 \
            envyCrashPointReg_{name};                                  \
        ::envy::crash_points::hit(name);                               \
    } while (0)

#endif // ENVY_FAULTS_CRASH_POINT_HH
