#include "flash/page_store.hh"

#include <cstring>

#include "common/logging.hh"
#include "persist/flash_backing.hh"

namespace envy {

BankPageStore::BankPageStore(std::uint32_t lane_bytes,
                             std::uint32_t pages_per_block,
                             std::uint32_t num_blocks,
                             obs::MetricsRegistry *metrics,
                             persist::BankBacking *backing)
    : laneBytes_(lane_bytes),
      pagesPerBlock_(pages_per_block),
      numBlocks_(num_blocks),
      blocks_(backing ? 0 : num_blocks),
      backing_(backing),
      metMaterialized_(obs::counterOf(metrics,
                                      "flash.blocks_materialized",
                                      "blocks",
                                      "erase blocks given a backing "
                                      "buffer on first program")),
      metReleased_(obs::counterOf(metrics, "flash.blocks_released",
                                  "blocks",
                                  "erase-block buffers dropped by "
                                  "lazy erase"))
{
    ENVY_ASSERT(lane_bytes > 0 && pages_per_block > 0 && num_blocks > 0,
                "flash: degenerate page store");
    if (backing_)
        materializedCount_ = backing_->materializedCount();
}

bool
BankPageStore::materialized(std::uint32_t block) const
{
    ENVY_ASSERT(block < numBlocks_, "flash: store block out of range");
    if (backing_)
        return backing_->materialized(block);
    return !blocks_[block].empty();
}

std::span<const std::uint8_t>
BankPageStore::pageIfMaterialized(std::uint32_t block,
                                  std::uint32_t page_off) const
{
    ENVY_ASSERT(block < numBlocks_ && page_off < pagesPerBlock_,
                "flash: store page out of range");
    if (backing_) {
        if (!backing_->materialized(block))
            return {};
        return std::span<const std::uint8_t>(
                   backing_->blockData(block))
            .subspan(std::uint64_t(page_off) * laneBytes_, laneBytes_);
    }
    const std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty())
        return {};
    return std::span<const std::uint8_t>(buf).subspan(
        std::uint64_t(page_off) * laneBytes_, laneBytes_);
}

std::span<std::uint8_t>
BankPageStore::pageForWrite(std::uint32_t block, std::uint32_t page_off)
{
    ENVY_ASSERT(block < numBlocks_ && page_off < pagesPerBlock_,
                "flash: store page out of range");
    if (backing_) {
        if (!backing_->materialized(block)) {
            backing_->materialize(block);
            ++materializedCount_;
            metMaterialized_.add();
        }
        return backing_->blockData(block).subspan(
            std::uint64_t(page_off) * laneBytes_, laneBytes_);
    }
    std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty()) {
        buf.assign(blockBytes(), 0xFF);
        ++materializedCount_;
        metMaterialized_.add();
    }
    return std::span<std::uint8_t>(buf).subspan(
        std::uint64_t(page_off) * laneBytes_, laneBytes_);
}

std::uint8_t
BankPageStore::readByte(std::uint32_t block, std::uint32_t page_off,
                        std::uint32_t lane) const
{
    ENVY_ASSERT(block < numBlocks_ && page_off < pagesPerBlock_ &&
                    lane < laneBytes_,
                "flash: store byte out of range");
    if (backing_) {
        if (!backing_->materialized(block))
            return 0xFF;
        return backing_->blockData(block)[std::uint64_t(page_off) *
                                              laneBytes_ +
                                          lane];
    }
    const std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty())
        return 0xFF;
    return buf[std::uint64_t(page_off) * laneBytes_ + lane];
}

void
BankPageStore::writeByte(std::uint32_t block, std::uint32_t page_off,
                         std::uint32_t lane, std::uint8_t value)
{
    pageForWrite(block, page_off)[lane] = value;
}

void
BankPageStore::release(std::uint32_t block)
{
    ENVY_ASSERT(block < numBlocks_, "flash: store block out of range");
    if (backing_) {
        if (!backing_->materialized(block))
            return;
        backing_->release(block);
        ENVY_ASSERT(materializedCount_ > 0,
                    "flash: store materialization accounting");
        --materializedCount_;
        metReleased_.add();
        return;
    }
    std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty())
        return;
    // swap-with-empty actually returns the buffer to the allocator;
    // clear() would keep the capacity and defeat sparseness.
    std::vector<std::uint8_t>().swap(buf);
    ENVY_ASSERT(materializedCount_ > 0,
                "flash: store materialization accounting");
    --materializedCount_;
    metReleased_.add();
}

void
BankPageStore::scrubTail(std::uint32_t block, std::uint32_t from_page)
{
    ENVY_ASSERT(block < numBlocks_ && from_page <= pagesPerBlock_,
                "flash: scrub out of range");
    if (!materialized(block) || from_page == pagesPerBlock_)
        return;
    std::span<std::uint8_t> cells =
        backing_ ? backing_->blockData(block)
                 : std::span<std::uint8_t>(blocks_[block]);
    const std::uint64_t from = std::uint64_t(from_page) * laneBytes_;
    std::memset(cells.data() + from, 0xFF, cells.size() - from);
}

} // namespace envy
