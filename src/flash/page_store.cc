#include "flash/page_store.hh"

#include "common/logging.hh"

namespace envy {

BankPageStore::BankPageStore(std::uint32_t lane_bytes,
                             std::uint32_t pages_per_block,
                             std::uint32_t num_blocks,
                             obs::MetricsRegistry *metrics)
    : laneBytes_(lane_bytes),
      pagesPerBlock_(pages_per_block),
      numBlocks_(num_blocks),
      blocks_(num_blocks),
      metMaterialized_(obs::counterOf(metrics,
                                      "flash.blocks_materialized",
                                      "blocks",
                                      "erase blocks given a backing "
                                      "buffer on first program")),
      metReleased_(obs::counterOf(metrics, "flash.blocks_released",
                                  "blocks",
                                  "erase-block buffers dropped by "
                                  "lazy erase"))
{
    ENVY_ASSERT(lane_bytes > 0 && pages_per_block > 0 && num_blocks > 0,
                "flash: degenerate page store");
}

bool
BankPageStore::materialized(std::uint32_t block) const
{
    ENVY_ASSERT(block < numBlocks_, "flash: store block out of range");
    return !blocks_[block].empty();
}

std::span<const std::uint8_t>
BankPageStore::pageIfMaterialized(std::uint32_t block,
                                  std::uint32_t page_off) const
{
    ENVY_ASSERT(block < numBlocks_ && page_off < pagesPerBlock_,
                "flash: store page out of range");
    const std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty())
        return {};
    return std::span<const std::uint8_t>(buf).subspan(
        std::uint64_t(page_off) * laneBytes_, laneBytes_);
}

std::span<std::uint8_t>
BankPageStore::pageForWrite(std::uint32_t block, std::uint32_t page_off)
{
    ENVY_ASSERT(block < numBlocks_ && page_off < pagesPerBlock_,
                "flash: store page out of range");
    std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty()) {
        buf.assign(blockBytes(), 0xFF);
        ++materializedCount_;
        metMaterialized_.add();
    }
    return std::span<std::uint8_t>(buf).subspan(
        std::uint64_t(page_off) * laneBytes_, laneBytes_);
}

std::uint8_t
BankPageStore::readByte(std::uint32_t block, std::uint32_t page_off,
                        std::uint32_t lane) const
{
    ENVY_ASSERT(block < numBlocks_ && page_off < pagesPerBlock_ &&
                    lane < laneBytes_,
                "flash: store byte out of range");
    const std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty())
        return 0xFF;
    return buf[std::uint64_t(page_off) * laneBytes_ + lane];
}

void
BankPageStore::writeByte(std::uint32_t block, std::uint32_t page_off,
                         std::uint32_t lane, std::uint8_t value)
{
    pageForWrite(block, page_off)[lane] = value;
}

void
BankPageStore::release(std::uint32_t block)
{
    ENVY_ASSERT(block < numBlocks_, "flash: store block out of range");
    std::vector<std::uint8_t> &buf = blocks_[block];
    if (buf.empty())
        return;
    // swap-with-empty actually returns the buffer to the allocator;
    // clear() would keep the capacity and defeat sparseness.
    std::vector<std::uint8_t>().swap(buf);
    ENVY_ASSERT(materializedCount_ > 0,
                "flash: store materialization accounting");
    --materializedCount_;
    metReleased_.add();
}

} // namespace envy
