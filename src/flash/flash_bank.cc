#include "flash/flash_bank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace envy {

FlashBank::FlashBank(std::uint32_t chips_per_bank,
                     std::uint32_t block_bytes,
                     std::uint32_t blocks_per_chip,
                     const FlashTiming &timing, bool store_data)
    : chipsPerBank_(chips_per_bank),
      blockBytes_(block_bytes),
      blocksPerChip_(blocks_per_chip),
      storeData_(store_data),
      timing_(timing)
{
    chips_.reserve(chipsPerBank_);
    for (std::uint32_t i = 0; i < chipsPerBank_; ++i)
        chips_.emplace_back(block_bytes, blocks_per_chip, timing,
                            store_data);
}

Tick
FlashBank::readPage(std::uint32_t block, std::uint32_t page_off,
                    std::span<std::uint8_t> out) const
{
    ENVY_ASSERT(block < blocksPerChip_ && page_off < blockBytes_,
                "bank read out of range");
    ENVY_ASSERT(out.size() >= chipsPerBank_, "output span too small");
    const std::uint64_t addr = byteAddr(block, page_off);
    for (std::uint32_t j = 0; j < chipsPerBank_; ++j)
        out[j] = chips_[j].read(addr);
    // One wide cycle regardless of width.
    return timing_.readTime;
}

Tick
FlashBank::programPage(std::uint32_t block, std::uint32_t page_off,
                       std::span<const std::uint8_t> data)
{
    ENVY_ASSERT(block < blocksPerChip_ && page_off < blockBytes_,
                "bank program out of range");
    ENVY_ASSERT(data.size() >= chipsPerBank_, "input span too small");
    const std::uint64_t addr = byteAddr(block, page_off);
    Tick busy = 0;
    for (std::uint32_t j = 0; j < chipsPerBank_; ++j) {
        chips_[j].writeCommand(FlashCmd::ProgramSetup);
        busy = std::max(busy, chips_[j].programByte(addr, data[j]));
    }
    return busy;
}

Tick
FlashBank::eraseSegment(std::uint32_t block)
{
    ENVY_ASSERT(block < blocksPerChip_, "bank erase out of range");
    Tick busy = 0;
    for (auto &chip : chips_) {
        chip.writeCommand(FlashCmd::EraseSetup);
        busy = std::max(busy, chip.eraseBlock(block));
    }
    return busy;
}

bool
FlashBank::allReady() const
{
    return std::all_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) {
                           return (c.status() & FlashStatus::ready) != 0;
                       });
}

bool
FlashBank::allProgrammedOk() const
{
    return std::all_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) {
                           return (c.status() &
                                   FlashStatus::programError) == 0;
                       });
}

bool
FlashBank::allErasedOk() const
{
    return std::all_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) {
                           return (c.status() &
                                   FlashStatus::eraseError) == 0;
                       });
}

void
FlashBank::clearStatus()
{
    for (auto &chip : chips_)
        chip.writeCommand(FlashCmd::ClearStatus);
}

bool
FlashBank::blockSpecFailed(std::uint32_t block) const
{
    return std::any_of(chips_.begin(), chips_.end(),
                       [block](const FlashChip &c) {
                           return c.blockSpecFailed(block);
                       });
}

std::vector<std::uint32_t>
FlashBank::specFailedBlocks() const
{
    std::vector<std::uint32_t> blocks;
    for (std::uint32_t b = 0; b < blocksPerChip_; ++b) {
        if (blockSpecFailed(b))
            blocks.push_back(b);
    }
    return blocks;
}

bool
FlashBank::outOfSpec() const
{
    return std::any_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) { return c.outOfSpec(); });
}

std::uint64_t
FlashBank::segmentCycles(std::uint32_t block) const
{
    return chips_[0].blockCycles(block);
}

} // namespace envy
