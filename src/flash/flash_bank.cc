#include "flash/flash_bank.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace envy {

FlashBank::FlashBank(std::uint32_t chips_per_bank,
                     std::uint32_t block_bytes,
                     std::uint32_t blocks_per_chip,
                     const FlashTiming &timing, bool store_data,
                     bool slow_dataplane, obs::MetricsRegistry *metrics,
                     persist::BankBacking *backing)
    : chipsPerBank_(chips_per_bank),
      blockBytes_(block_bytes),
      blocksPerChip_(blocks_per_chip),
      storeData_(store_data),
      slowDataplane_(slow_dataplane),
      timing_(timing)
{
    if (storeData_) {
        // One page-major store shared by every chip: bank page p of
        // block b is contiguous, chips are per-lane views.  Heap
        // allocation keeps the chips' pointers stable across moves.
        store_ = std::make_unique<BankPageStore>(
            chipsPerBank_, blockBytes_, blocksPerChip_, metrics,
            backing);
    }
    chips_.reserve(chipsPerBank_);
    for (std::uint32_t i = 0; i < chipsPerBank_; ++i)
        chips_.emplace_back(block_bytes, blocks_per_chip, timing,
                            store_.get(), i);
}

Tick
FlashBank::readPageSlow(std::uint32_t block, std::uint32_t page_off,
                        std::span<std::uint8_t> out) const
{
    const std::uint64_t addr = byteAddr(block, page_off);
    for (std::uint32_t j = 0; j < chipsPerBank_; ++j)
        out[j] = chips_[j].read(addr);
    // One wide cycle regardless of width.
    return timing_.readTime;
}

Tick
FlashBank::readPage(std::uint32_t block, std::uint32_t page_off,
                    std::span<std::uint8_t> out) const
{
    ENVY_ASSERT(block < blocksPerChip_ && page_off < blockBytes_,
                "bank read out of range");
    ENVY_ASSERT(out.size() >= chipsPerBank_, "output span too small");
    if (slowDataplane_)
        return readPageSlow(block, page_off, out);

    // CUI enforcement at the page boundary: any lane not in
    // read-array mode (a chip left in ReadStatus returns its status
    // byte; a pending program/erase asserts) must take the exact
    // per-chip path.  The lockstep cache answers the common all-idle
    // case without touching pageSize chip objects.
    if (!lanesLockstep()) {
        for (std::uint32_t j = 0; j < chipsPerBank_; ++j) {
            if (!chips_[j].inReadArray())
                return readPageSlow(block, page_off, out);
        }
    }

    if (!storeData_) {
        std::memset(out.data(), 0xFF, chipsPerBank_);
        return timing_.readTime;
    }
    const std::span<const std::uint8_t> cells =
        store_->pageIfMaterialized(block, page_off);
    if (cells.empty())
        std::memset(out.data(), 0xFF, chipsPerBank_); // erased page
    else
        std::memcpy(out.data(), cells.data(), chipsPerBank_);
    return timing_.readTime;
}

Tick
FlashBank::programPageSlow(std::uint32_t block, std::uint32_t page_off,
                           std::span<const std::uint8_t> data)
{
    const std::uint64_t addr = byteAddr(block, page_off);
    Tick busy = 0;
    for (std::uint32_t j = 0; j < chipsPerBank_; ++j) {
        chips_[j].writeCommand(FlashCmd::ProgramSetup); // envy-lint: allow(no-per-byte-page-loop) slow-path oracle
        busy = std::max(busy, chips_[j].programByte(addr, data[j])); // envy-lint: allow(no-per-byte-page-loop) slow-path oracle
    }
    return busy;
}

Tick
FlashBank::programPage(std::uint32_t block, std::uint32_t page_off,
                       std::span<const std::uint8_t> data)
{
    ENVY_ASSERT(block < blocksPerChip_ && page_off < blockBytes_,
                "bank program out of range");
    ENVY_ASSERT(data.size() >= chipsPerBank_, "input span too small");
    if (slowDataplane_)
        return programPageSlow(block, page_off, data);

    // One wear/timing computation for the whole page: erase is
    // bank-wide, so wear is in lockstep and chip 0 speaks for every
    // lane (chips start at zero cycles and applyBankErase increments
    // them together).
    const Tick t = timing_.programTimeAfter(chips_[0].blockCycles(block));
    const bool overrun = t > timing_.maxProgramTime;

    // applyBankProgram (mode back to read-array, suspended cleared)
    // is a no-op on a lockstep-idle lane, so the all-idle case skips
    // the per-chip walk entirely.
    if (!lanesLockstep()) {
        for (auto &c : chips_)
            c.applyBankProgram(); // net ProgramSetup + programByte effect
    }

    if (!storeData_) {
        if (overrun) {
            lanesLockstep_ = false; // latches programError per lane
            for (auto &c : chips_)
                c.noteProgramSpecFail(block);
        }
        return t;
    }

    const std::span<const std::uint8_t> present =
        store_->pageIfMaterialized(block, page_off);
    if (present.empty()) {
        // Erased page: no 0 -> 1 transition is possible.  Materialize
        // only when the data actually clears a bit, so all-ones
        // programs keep the store sparse (matches programByte).
        bool all_ones = true;
        for (std::uint32_t j = 0; j < chipsPerBank_; ++j)
            all_ones = all_ones && data[j] == 0xFF;
        if (!all_ones) {
            const std::span<std::uint8_t> cells =
                store_->pageForWrite(block, page_off);
            std::memcpy(cells.data(), data.data(), chipsPerBank_);
        }
        if (overrun) {
            lanesLockstep_ = false;
            for (auto &c : chips_)
                c.noteProgramSpecFail(block);
        }
        return t;
    }

    // Error scan first (branchless, vectorizable): a lane requesting
    // a 0 -> 1 transition latches a program error and does not touch
    // its cell or its spec-failure record, exactly like programByte.
    std::uint8_t err = 0;
    for (std::uint32_t j = 0; j < chipsPerBank_; ++j)
        err = static_cast<std::uint8_t>(err | (data[j] & ~present[j]));
    const std::span<std::uint8_t> cells =
        store_->pageForWrite(block, page_off);
    if (err == 0) {
        for (std::uint32_t j = 0; j < chipsPerBank_; ++j)
            cells[j] = static_cast<std::uint8_t>(cells[j] & data[j]);
        if (overrun) {
            lanesLockstep_ = false;
            for (auto &c : chips_)
                c.noteProgramSpecFail(block);
        }
        return t;
    }
    lanesLockstep_ = false; // some lane latches programError below
    for (std::uint32_t j = 0; j < chipsPerBank_; ++j) {
        if ((data[j] & ~cells[j]) != 0) {
            chips_[j].noteProgramError();
        } else {
            cells[j] = static_cast<std::uint8_t>(cells[j] & data[j]);
            if (overrun)
                chips_[j].noteProgramSpecFail(block);
        }
    }
    return t;
}

Tick
FlashBank::eraseSegmentSlow(std::uint32_t block)
{
    Tick busy = 0;
    for (auto &chip : chips_) {
        chip.writeCommand(FlashCmd::EraseSetup);
        busy = std::max(busy, chip.eraseBlock(block));
    }
    return busy;
}

Tick
FlashBank::eraseSegment(std::uint32_t block)
{
    ENVY_ASSERT(block < blocksPerChip_, "bank erase out of range");
    if (slowDataplane_)
        return eraseSegmentSlow(block);

    const std::uint64_t cycles = chips_[0].blockCycles(block);
    const Tick t = timing_.eraseTimeAfter(cycles);
    const bool overrun = t > timing_.maxEraseTime;
    if (overrun)
        lanesLockstep_ = false; // applyBankErase latches eraseError
    for (auto &c : chips_) {
        ENVY_ASSERT(c.blockCycles(block) == cycles,
                    "flash: bank wear out of lockstep");
        c.applyBankErase(block, overrun);
    }
    if (store_)
        store_->release(block); // lazy erase: 0xFF on next touch
    return t;
}

bool
FlashBank::allReady() const
{
    if (lanesLockstep())
        return true;
    return std::all_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) {
                           return (c.status() & FlashStatus::ready) != 0;
                       });
}

bool
FlashBank::allProgrammedOk() const
{
    if (lanesLockstep())
        return true;
    return std::all_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) {
                           return (c.status() &
                                   FlashStatus::programError) == 0;
                       });
}

bool
FlashBank::allErasedOk() const
{
    if (lanesLockstep())
        return true;
    return std::all_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) {
                           return (c.status() &
                                   FlashStatus::eraseError) == 0;
                       });
}

void
FlashBank::clearStatus()
{
    // ClearStatus leaves lanes in read-status mode on real parts; the
    // model mirrors whatever FlashChip does, so revalidate lazily.
    lanesLockstep_ = false;
    for (auto &chip : chips_)
        chip.writeCommand(FlashCmd::ClearStatus);
}

bool
FlashBank::blockSpecFailed(std::uint32_t block) const
{
    return std::any_of(chips_.begin(), chips_.end(),
                       [block](const FlashChip &c) {
                           return c.blockSpecFailed(block);
                       });
}

std::vector<std::uint32_t>
FlashBank::specFailedBlocks() const
{
    std::vector<std::uint32_t> blocks;
    for (std::uint32_t b = 0; b < blocksPerChip_; ++b) {
        if (blockSpecFailed(b))
            blocks.push_back(b);
    }
    return blocks;
}

bool
FlashBank::outOfSpec() const
{
    return std::any_of(chips_.begin(), chips_.end(),
                       [](const FlashChip &c) { return c.outOfSpec(); });
}

std::uint64_t
FlashBank::segmentCycles(std::uint32_t block) const
{
    return chips_[0].blockCycles(block);
}

} // namespace envy
