/**
 * @file
 * Raw device timing and endurance parameters (paper Figure 12 and §2).
 *
 * Times are in ticks (nanoseconds).  The degradation model follows §2:
 * program and erase slow down slightly with every cycle; a chip "fails"
 * (in the flash sense — operations exceed their specified window, data
 * remains readable) once an operation overruns its rated maximum.
 */

#ifndef ENVY_FLASH_FLASH_TIMING_HH
#define ENVY_FLASH_FLASH_TIMING_HH

#include "common/types.hh"
#include "common/units.hh"

namespace envy {

struct FlashTiming
{
    /** Array read access of one page via the wide path. */
    Tick readTime = 100;
    /** Byte program time (whole page programs in parallel, §3.3). */
    Tick programTime = microseconds(4);
    /** Block erase time; a segment erase runs all chips in parallel. */
    Tick eraseTime = milliseconds(50);

    /** Cycles the manufacturer guarantees (§5.5 uses 1M-cycle parts). */
    std::uint64_t ratedCycles = 1000 * 1000;

    /**
     * Fractional slow-down of program/erase per completed cycle.
     * §2 reports a 10k-rated chip still programming in 4us after 2M
     * cycles (rated max 250us), i.e. degradation is tiny; the default
     * reaches ~2x the base time at 5M cycles.
     */
    double wearSlowdownPerCycle = 2e-7;

    /** Specified not-to-exceed windows; overruns count as failure. */
    Tick maxProgramTime = microseconds(250);
    Tick maxEraseTime = seconds(10);

    /** Effective program time after @p cycles program/erase cycles. */
    Tick
    programTimeAfter(std::uint64_t cycles) const
    {
        return static_cast<Tick>(
            static_cast<double>(programTime) *
            (1.0 + wearSlowdownPerCycle * static_cast<double>(cycles)));
    }

    /** Effective erase time after @p cycles program/erase cycles. */
    Tick
    eraseTimeAfter(std::uint64_t cycles) const
    {
        return static_cast<Tick>(
            static_cast<double>(eraseTime) *
            (1.0 + wearSlowdownPerCycle * static_cast<double>(cycles)));
    }
};

} // namespace envy

#endif // ENVY_FLASH_FLASH_TIMING_HH
