#include "flash/flash_chip.hh"

#include <algorithm>

#include "common/logging.hh"

namespace envy {

FlashChip::FlashChip(std::uint32_t block_bytes, std::uint32_t num_blocks,
                     const FlashTiming &timing, bool store_data)
    : blockBytes_(block_bytes),
      numBlocks_(num_blocks),
      timing_(timing),
      storeData_(store_data),
      cycles_(num_blocks, 0),
      specFailed_(num_blocks, false)
{
    ENVY_ASSERT(block_bytes > 0 && num_blocks > 0, "degenerate chip");
    if (storeData_) {
        // A standalone chip is a one-lane bank: each "page" of the
        // store is a single byte of the block.
        ownStore_ = std::make_unique<BankPageStore>(1, blockBytes_,
                                                    numBlocks_);
        store_ = ownStore_.get();
    }
}

FlashChip::FlashChip(std::uint32_t block_bytes, std::uint32_t num_blocks,
                     const FlashTiming &timing, BankPageStore *store,
                     std::uint32_t lane)
    : blockBytes_(block_bytes),
      numBlocks_(num_blocks),
      timing_(timing),
      storeData_(store != nullptr),
      store_(store),
      lane_(lane),
      cycles_(num_blocks, 0),
      specFailed_(num_blocks, false)
{
    ENVY_ASSERT(block_bytes > 0 && num_blocks > 0, "degenerate chip");
    ENVY_ASSERT(!store || (lane < store->laneBytes() &&
                           store->pagesPerBlock() == block_bytes &&
                           store->numBlocks() == num_blocks),
                "flash: chip/store geometry mismatch");
}

std::uint8_t
FlashChip::read(std::uint64_t addr) const
{
    if (mode_ == Mode::ReadStatus)
        return status_;
    ENVY_ASSERT(mode_ == Mode::ReadArray,
                "array read while CUI busy (mode ",
                static_cast<int>(mode_), ")");
    if (!storeData_)
        return 0xFF;
    ENVY_ASSERT(addr < capacity(), "chip read out of range");
    return store_->readByte(
        static_cast<std::uint32_t>(addr / blockBytes_),
        static_cast<std::uint32_t>(addr % blockBytes_), lane_);
}

void
FlashChip::writeCommand(FlashCmd cmd)
{
    switch (cmd) {
      case FlashCmd::ReadArray:
        mode_ = Mode::ReadArray;
        break;
      case FlashCmd::ReadStatus:
        mode_ = Mode::ReadStatus;
        break;
      case FlashCmd::ClearStatus:
        status_ = FlashStatus::ready;
        mode_ = Mode::ReadArray;
        break;
      case FlashCmd::ProgramSetup:
        mode_ = Mode::ProgramPending;
        break;
      case FlashCmd::EraseSetup:
        mode_ = Mode::ErasePending;
        break;
      case FlashCmd::Suspend:
        // Long operations are sequenced by the caller; the chip only
        // reflects the state in its status register.
        status_ |= FlashStatus::suspended;
        break;
      default:
        ENVY_PANIC("flash: unexpected CUI command ",
                   static_cast<int>(cmd));
    }
}

Tick
FlashChip::programByte(std::uint64_t addr, std::uint8_t value)
{
    ENVY_ASSERT(mode_ == Mode::ProgramPending,
                "programByte without ProgramSetup");
    mode_ = Mode::ReadArray;
    status_ &= ~FlashStatus::suspended;

    const std::uint32_t block =
        static_cast<std::uint32_t>(addr / blockBytes_);
    ENVY_ASSERT(block < numBlocks_, "program out of range");

    if (storeData_) {
        // Programming can only clear bits.  Requesting a 0 -> 1
        // transition is a program error: the internal verify loop
        // never sees the desired data (§2).
        const std::uint32_t off =
            static_cast<std::uint32_t>(addr % blockBytes_);
        const std::uint8_t cell = store_->readByte(block, off, lane_);
        if ((value & ~cell) != 0) {
            status_ |= FlashStatus::programError;
            return timing_.programTimeAfter(cycles_[block]);
        }
        // Skip the write when no bit changes so an all-ones program
        // does not materialize an erased block.
        if ((cell & value) != cell)
            store_->writeByte(block, off, lane_,
                              static_cast<std::uint8_t>(cell & value));
    }

    const Tick t = timing_.programTimeAfter(cycles_[block]);
    if (t > timing_.maxProgramTime)
        specFail(block, FlashStatus::programError);
    return t;
}

Tick
FlashChip::eraseBlock(std::uint32_t block)
{
    ENVY_ASSERT(mode_ == Mode::ErasePending,
                "eraseBlock without EraseSetup");
    mode_ = Mode::ReadArray;
    status_ &= ~FlashStatus::suspended;
    ENVY_ASSERT(block < numBlocks_, "erase out of range");

    if (storeData_) {
        // Lazy erase: dropping the buffer makes every cell read as
        // 0xFF; idempotent when the bank's chips share one store.
        store_->release(block);
    }

    const Tick t = timing_.eraseTimeAfter(cycles_[block]);
    ++cycles_[block];
    if (t > timing_.maxEraseTime)
        specFail(block, FlashStatus::eraseError);
    return t;
}

void
FlashChip::specFail(std::uint32_t block, std::uint8_t status_bit)
{
    // A wear overrun is a spec failure (§2): the operation finished
    // and data stays readable, but the part is out of spec and the
    // controller must stop trusting this block.  Latch the status
    // bit (until ClearStatus) and record the block so retirement
    // logic and stats reports can query it.
    status_ |= status_bit;
    specFailed_[block] = true;
    outOfSpec_ = true;
}

bool
FlashChip::blockSpecFailed(std::uint32_t block) const
{
    ENVY_ASSERT(block < numBlocks_, "block out of range");
    return specFailed_[block];
}

std::vector<std::uint32_t>
FlashChip::specFailedBlocks() const
{
    std::vector<std::uint32_t> blocks;
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (specFailed_[b])
            blocks.push_back(b);
    }
    return blocks;
}

void
FlashChip::forceProgramSpecFailure(std::uint32_t block)
{
    ENVY_ASSERT(block < numBlocks_, "block out of range");
    specFail(block, FlashStatus::programError);
}

void
FlashChip::forceEraseSpecFailure(std::uint32_t block)
{
    ENVY_ASSERT(block < numBlocks_, "block out of range");
    specFail(block, FlashStatus::eraseError);
}

std::uint64_t
FlashChip::blockCycles(std::uint32_t block) const
{
    ENVY_ASSERT(block < numBlocks_, "block out of range");
    return cycles_[block];
}

void
FlashChip::restoreCycles(std::uint32_t block, std::uint64_t cycles)
{
    ENVY_ASSERT(block < numBlocks_, "block out of range");
    cycles_[block] = cycles;
}

std::uint64_t
FlashChip::maxCycles() const
{
    return *std::max_element(cycles_.begin(), cycles_.end());
}

} // namespace envy
