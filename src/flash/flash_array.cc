#include "flash/flash_array.hh"

#include <cstdlib>
#include <string_view>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "persist/flash_backing.hh"

namespace envy {

namespace {

/** ENVY_SLOW_DATAPLANE (any value but "0") forces the byte-at-a-time
 *  oracle for A/B runs without recompiling. */
bool
envSlowDataplane()
{
    const char *v = std::getenv("ENVY_SLOW_DATAPLANE");
    return v && *v && std::string_view(v) != "0";
}

} // namespace

FlashArray::FlashArray(const Geometry &geom, const FlashTiming &timing,
                       bool store_data, StatGroup *parent,
                       obs::MetricsRegistry *metrics,
                       bool slow_dataplane,
                       persist::FlashPersist *persist)
    : StatGroup("flash", parent),
      statPagesProgrammed(this, "pagesProgrammed",
                          "pages programmed into the array"),
      statPagesInvalidated(this, "pagesInvalidated",
                           "pages marked dead by copy-on-write/clean"),
      statSegmentErases(this, "segmentErases",
                        "whole-segment erase operations"),
      statPageReads(this, "pageReads", "page reads via the wide path"),
      statSlotsRetired(this, "slotsRetired",
                       "slots retired after a program spec-failure"),
      statProgramSpecFailures(this, "programSpecFailures",
                              "program operations that spec-failed"),
      statEraseRetries(this, "eraseRetries",
                       "erase operations retried (transient failure)"),
      statEraseSpecFailures(this, "eraseSpecFailures",
                            "erase operations that overran their "
                            "rated window"),
      metPrograms(obs::counterOf(metrics, "flash.programs", "pages",
                                 "pages programmed into the array")),
      metInvalidations(obs::counterOf(metrics, "flash.invalidations",
                                      "pages",
                                      "pages marked dead by "
                                      "copy-on-write/clean")),
      metErases(obs::counterOf(metrics, "flash.erases", "segments",
                               "whole-segment erase operations")),
      metPageReads(obs::counterOf(metrics, "flash.page_reads", "pages",
                                  "page reads via the wide path")),
      metSlotsRetired(obs::counterOf(metrics, "flash.slots_retired",
                                     "slots",
                                     "slots retired after a program "
                                     "spec-failure")),
      geom_(geom),
      timing_(timing),
      storeData_(store_data),
      slowDataplane_(slow_dataplane || envSlowDataplane()),
      persist_(persist)
{
    if (const char *problem = geom_.validate())
        ENVY_FATAL("flash: bad geometry: ", problem);

    banks_.reserve(geom_.numBanks);
    for (std::uint32_t b = 0; b < geom_.numBanks; ++b)
        banks_.emplace_back(geom_.pageSize, geom_.blockBytes,
                            geom_.blocksPerChip, timing_, store_data,
                            slowDataplane_, metrics,
                            persist_ ? persist_->bankBacking(b)
                                     : nullptr);

    segments_.resize(geom_.numSegments());
    for (auto &s : segments_) {
        s.owner.assign(geom_.pagesPerSegment().value(), ownerDead);
        s.retired.assign(geom_.pagesPerSegment().value(), false);
    }
}

FlashArray::SegmentState &
FlashArray::state(SegmentId seg)
{
    ENVY_ASSERT(seg.valid() && seg.value() < segments_.size(),
                "flash: bad segment id ", seg);
    return segments_[seg.value()];
}

const FlashArray::SegmentState &
FlashArray::state(SegmentId seg) const
{
    ENVY_ASSERT(seg.valid() && seg.value() < segments_.size(),
                "flash: bad segment id ", seg);
    return segments_[seg.value()];
}

void
FlashArray::retireCurrentSlot(SegmentId seg, SegmentState &s)
{
    const std::uint32_t slot = s.writePtr;
    s.retired[slot] = true;
    s.owner[slot] = ownerDead;
    ++s.retiredTotal;
    ++s.writePtr; // the slot is consumed, but holds nothing live
    if (persist_) {
        persist_->meta.setRetired(seg, SlotId(slot));
        persist_->meta.setWritePtr(seg, s.writePtr);
    }
}

FlashArray::AppendResult
FlashArray::tryAppendRaw(SegmentId seg, std::uint32_t owner,
                         std::span<const std::uint8_t> data)
{
    SegmentState &s = state(seg);
    const std::uint32_t cap =
        static_cast<std::uint32_t>(geom_.pagesPerSegment().value());

    // Skip slots retired in an earlier life of this segment.
    const std::uint32_t ptrBeforeSkip = s.writePtr;
    while (s.writePtr < cap && s.retired[s.writePtr]) {
        ++s.writePtr;
        ENVY_ASSERT(s.retiredAhead > 0,
                    "flash: retired-slot accounting");
        --s.retiredAhead;
    }
    if (persist_ && s.writePtr != ptrBeforeSkip)
        persist_->meta.setWritePtr(seg, s.writePtr);
    ENVY_ASSERT(s.writePtr < cap,
                "flash: append to a full segment ", seg);

    const SlotId slot(s.writePtr);
    const std::uint32_t block = geom_.blockOf(seg);
    FlashBank &owning_bank = bank(geom_.bankOf(seg));

    if (programFaultHook && programFaultHook(seg, slot))
        owning_bank.chip(0).forceProgramSpecFailure(block);

    if (storeData_) {
        ENVY_ASSERT(data.size() >= geom_.pageSize,
                    "flash: page data missing in functional mode");
        owning_bank.programPage(block, slot.value(), data);
    }

    // The controller checks the status of all chips in parallel
    // after every operation (paper section 5.1).
    if (!owning_bank.allProgrammedOk()) {
        // A spec-failure (wear overrun or injected fault) retires
        // the slot: the damage is physical, so the mark survives
        // erase and the slot is never programmed again.  Any other
        // program error means a slot was reused without an erase --
        // a controller bug, not a device failure.
        ENVY_ASSERT(owning_bank.blockSpecFailed(block),
                    "flash: program error in segment ", seg,
                    " slot ", slot);
        owning_bank.clearStatus();
        if (persist_)
            persist_->meta.setSpecFailed(seg);
        retireCurrentSlot(seg, s);
        ++statSlotsRetired;
        ++statProgramSpecFailures;
        metSlotsRetired.add();
        if (segmentChangedHook)
            segmentChangedHook(seg);
        return AppendResult{FlashPageAddr{}, true};
    }

    ++s.writePtr;
    s.owner[slot.value()] = owner;
    ++s.live;
    totalLive_ += PageCount(1);
    if (persist_) {
        // Cells were programmed above, before this metadata: a crash
        // in between leaves a "flash-ahead" tail that reopen scrubs
        // (docs/PERSISTENCE.md).
        persist_->meta.setOwner(seg, slot, owner);
        persist_->meta.setWritePtr(seg, s.writePtr);
    }
    ++statPagesProgrammed;
    metPrograms.add();
    if (segmentChangedHook)
        segmentChangedHook(seg);
    return AppendResult{FlashPageAddr{seg, slot}, false};
}

FlashPageAddr
FlashArray::appendRaw(SegmentId seg, std::uint32_t owner,
                      std::span<const std::uint8_t> data)
{
    for (;;) {
        const AppendResult r = tryAppendRaw(seg, owner, data);
        if (!r.failed)
            return r.addr;
    }
}

FlashPageAddr
FlashArray::appendPage(SegmentId seg, LogicalPageId logical,
                       std::span<const std::uint8_t> data)
{
    ENVY_ASSERT(logical.valid() && logical.value() < ownerShadow,
                "flash: bad logical page ", logical);
    return appendRaw(seg,
                     static_cast<std::uint32_t>(logical.value()),
                     data);
}

FlashArray::AppendResult
FlashArray::tryAppendPage(SegmentId seg, LogicalPageId logical,
                          std::span<const std::uint8_t> data)
{
    ENVY_ASSERT(logical.valid() && logical.value() < ownerShadow,
                "flash: bad logical page ", logical);
    return tryAppendRaw(seg,
                        static_cast<std::uint32_t>(logical.value()),
                        data);
}

FlashPageAddr
FlashArray::appendShadow(SegmentId seg,
                         std::span<const std::uint8_t> data)
{
    return appendRaw(seg, ownerShadow, data);
}

void
FlashArray::invalidatePage(FlashPageAddr addr)
{
    SegmentState &s = state(addr.segment);
    ENVY_ASSERT(addr.slot.value() < s.writePtr,
                "flash: invalidate of unwritten slot");
    ENVY_ASSERT(s.owner[addr.slot.value()] != ownerDead,
                "flash: double invalidate of segment ", addr.segment,
                " slot ", addr.slot);
    s.owner[addr.slot.value()] = ownerDead;
    ENVY_ASSERT(s.live > 0, "flash: live underflow");
    --s.live;
    totalLive_ -= PageCount(1);
    if (persist_)
        persist_->meta.setOwner(addr.segment, addr.slot, ownerDead);
    ++statPagesInvalidated;
    metInvalidations.add();
    if (segmentChangedHook)
        segmentChangedHook(addr.segment);
}

void
FlashArray::readPage(FlashPageAddr addr, std::span<std::uint8_t> out)
{
    const SegmentState &s = state(addr.segment);
    ENVY_ASSERT(addr.slot.value() < s.writePtr,
                "flash: read of unwritten slot");
    ++statPageReads;
    metPageReads.add();
    if (!storeData_)
        return;
    bank(geom_.bankOf(addr.segment)).readPage(
        geom_.blockOf(addr.segment), addr.slot.value(), out);
}

LogicalPageId
FlashArray::pageOwner(FlashPageAddr addr) const
{
    const SegmentState &s = state(addr.segment);
    if (addr.slot.value() >= s.writePtr ||
        s.owner[addr.slot.value()] >= ownerShadow)
        return LogicalPageId::invalid();
    return LogicalPageId(s.owner[addr.slot.value()]);
}

void
FlashArray::convertToShadow(FlashPageAddr addr)
{
    SegmentState &s = state(addr.segment);
    ENVY_ASSERT(addr.slot.value() < s.writePtr &&
                    s.owner[addr.slot.value()] < ownerShadow,
                "flash: only a live page can become a shadow");
    s.owner[addr.slot.value()] = ownerShadow;
    if (persist_)
        persist_->meta.setOwner(addr.segment, addr.slot,
                                ownerShadow);
    // Still counted live: the cleaner must carry shadows along.
}

bool
FlashArray::pageIsShadow(FlashPageAddr addr) const
{
    const SegmentState &s = state(addr.segment);
    return addr.slot.value() < s.writePtr &&
           s.owner[addr.slot.value()] == ownerShadow;
}

void
FlashArray::forEachShadow(
    SegmentId seg,
    const std::function<void(SlotId)> &fn) const
{
    const SegmentState &s = state(seg);
    for (std::uint32_t slot = 0; slot < s.writePtr; ++slot) {
        if (s.owner[slot] == ownerShadow)
            fn(SlotId(slot));
    }
}

bool
FlashArray::pageLive(FlashPageAddr addr) const
{
    return pageOwner(addr).valid();
}

PageCount
FlashArray::freeSlots(SegmentId seg) const
{
    const SegmentState &s = state(seg);
    return geom_.pagesPerSegment() -
           PageCount(std::uint64_t{s.writePtr} + s.retiredAhead);
}

PageCount
FlashArray::liveCount(SegmentId seg) const
{
    return PageCount(state(seg).live);
}

PageCount
FlashArray::invalidCount(SegmentId seg) const
{
    // Retired slots behind the write pointer are not reclaimable
    // dead space: an erase does not bring them back.
    const SegmentState &s = state(seg);
    const std::uint32_t retired_behind = s.retiredTotal - s.retiredAhead;
    return PageCount(s.writePtr - s.live - retired_behind);
}

PageCount
FlashArray::usedSlots(SegmentId seg) const
{
    return PageCount(state(seg).writePtr);
}

double
FlashArray::utilization(SegmentId seg) const
{
    return static_cast<double>(state(seg).live) /
           asDouble(geom_.pagesPerSegment());
}

std::uint64_t
FlashArray::eraseCycles(SegmentId seg) const
{
    return state(seg).eraseCycles;
}

Tick
FlashArray::eraseSegment(SegmentId seg)
{
    SegmentState &s = state(seg);
    ENVY_ASSERT(s.live == 0, "flash: erasing segment ", seg,
                " with ", s.live, " live pages");

    FlashBank &owning_bank = bank(geom_.bankOf(seg));
    const std::uint32_t block = geom_.blockOf(seg);

    Tick busy = 0;
    for (std::uint32_t attempt = 0;; ++attempt) {
        const bool transient = eraseFaultHook && eraseFaultHook(seg);
        busy += owning_bank.eraseSegment(block);
        ++s.eraseCycles;
        ++statSegmentErases;
        if (!transient)
            break;
        // Transient bad block: the erase did not verify; retry.
        ++statEraseRetries;
        ENVY_ASSERT(attempt < 8, "flash: segment ", seg,
                    " repeatedly failed to erase");
    }
    if (!owning_bank.allErasedOk()) {
        // Wear overrun (§2): the block is erased, just slower than
        // spec allows.  Record the failure and carry on; the block
        // stays usable and the chips remember it spec-failed.
        ++statEraseSpecFailures;
        owning_bank.clearStatus();
        if (persist_)
            persist_->meta.setSpecFailed(seg);
    }

    std::fill(s.owner.begin(), s.owner.begin() + s.writePtr, ownerDead);
    s.writePtr = 0;
    // Retired slots stay retired: the damage is physical.
    s.retiredAhead = s.retiredTotal;
    if (persist_)
        persist_->meta.resetAfterErase(seg, s.eraseCycles);
    metErases.add();
    ENVY_TRACE("flash.erase", obs::tv("segment", seg.value()),
               obs::tv("cycles", s.eraseCycles));
    if (segmentChangedHook)
        segmentChangedHook(seg);
    return busy;
}

bool
FlashArray::slotRetired(FlashPageAddr addr) const
{
    const SegmentState &s = state(addr.segment);
    ENVY_ASSERT(addr.slot.value() < geom_.pagesPerSegment().value(),
                "flash: bad slot ", addr.slot);
    return s.retired[addr.slot.value()];
}

PageCount
FlashArray::retiredCount(SegmentId seg) const
{
    return PageCount(state(seg).retiredTotal);
}

void
FlashArray::retireNextSlot(SegmentId seg)
{
    SegmentState &s = state(seg);
    ENVY_ASSERT(s.writePtr < geom_.pagesPerSegment().value(),
                "flash: retire in a full segment ", seg);
    ENVY_ASSERT(!s.retired[s.writePtr], "flash: slot already retired");
    retireCurrentSlot(seg, s);
    if (segmentChangedHook)
        segmentChangedHook(seg);
}

void
FlashArray::restoreRetiredAhead(SegmentId seg, SlotId slot)
{
    SegmentState &s = state(seg);
    ENVY_ASSERT(slot.value() < geom_.pagesPerSegment().value(),
                "flash: bad slot ", slot);
    ENVY_ASSERT(slot.value() >= s.writePtr,
                "flash: restoreRetiredAhead below the write pointer");
    ENVY_ASSERT(!s.retired[slot.value()],
                "flash: slot already retired");
    s.retired[slot.value()] = true;
    ++s.retiredTotal;
    ++s.retiredAhead;
    if (persist_)
        persist_->meta.setRetired(seg, slot);
    if (segmentChangedHook)
        segmentChangedHook(seg);
}

bool
FlashArray::segmentSpecFailed(SegmentId seg) const
{
    return bank(geom_.bankOf(seg)).blockSpecFailed(geom_.blockOf(seg));
}

std::vector<SegmentId>
FlashArray::specFailedSegments() const
{
    std::vector<SegmentId> out;
    for (std::uint64_t i = 0; i < geom_.numSegments(); ++i) {
        if (segmentSpecFailed(SegmentId(i)))
            out.push_back(SegmentId(i));
    }
    return out;
}

void
FlashArray::forEachLive(
    SegmentId seg,
    const std::function<void(SlotId, LogicalPageId)> &fn) const
{
    const SegmentState &s = state(seg);
    for (std::uint32_t slot = 0; slot < s.writePtr; ++slot) {
        if (s.owner[slot] < ownerShadow)
            fn(SlotId(slot), LogicalPageId(s.owner[slot]));
    }
}

void
FlashArray::restoreWear(SegmentId seg, std::uint64_t cycles)
{
    state(seg).eraseCycles = cycles;
    FlashBank &owning_bank = bank(geom_.bankOf(seg));
    for (std::uint32_t c = 0; c < geom_.pageSize; ++c)
        owning_bank.chip(c).restoreCycles(geom_.blockOf(seg), cycles);
    if (persist_)
        persist_->meta.setEraseCycles(seg, cycles);
}

void
FlashArray::restoreFromPersist()
{
    ENVY_ASSERT(persist_, "flash: restoreFromPersist without backing");
    const persist::FlashMetaView &m = persist_->meta;
    const std::uint32_t cap =
        static_cast<std::uint32_t>(geom_.pagesPerSegment().value());

    totalLive_ = PageCount(0);
    for (std::uint64_t i = 0; i < geom_.numSegments(); ++i) {
        const SegmentId seg(i);
        SegmentState &s = segments_[i];
        const std::uint32_t ptr = m.writePtr(seg);
        ENVY_ASSERT(ptr <= cap,
                    "persist: segment ", seg, " write pointer ", ptr,
                    " beyond capacity ", cap);
        s.writePtr = ptr;
        s.eraseCycles = m.eraseCycles(seg);
        s.live = 0;
        s.retiredTotal = 0;
        s.retiredAhead = 0;
        for (std::uint32_t slot = 0; slot < cap; ++slot) {
            const bool retired = m.retired(seg, SlotId(slot));
            s.retired[slot] = retired;
            if (retired) {
                ++s.retiredTotal;
                if (slot >= ptr)
                    ++s.retiredAhead;
            }
            // Beyond the write pointer the slot is erased whatever
            // the file says: a crash between setOwner and setWritePtr
            // can leave a stale owner word there.
            const std::uint32_t owner =
                slot < ptr ? m.owner(seg, SlotId(slot)) : ownerDead;
            s.owner[slot] = owner;
            if (slot < ptr && owner != ownerDead)
                ++s.live; // shadows included, as in convertToShadow
        }
        totalLive_ += PageCount(s.live);

        FlashBank &owning_bank = bank(geom_.bankOf(seg));
        const std::uint32_t block = geom_.blockOf(seg);
        for (std::uint32_t c = 0; c < geom_.pageSize; ++c)
            owning_bank.chip(c).restoreCycles(block, s.eraseCycles);
        if (m.specFailed(seg))
            owning_bank.chip(0).restoreSpecFailed(block);
        // Cells programmed ahead of the recorded write pointer (crash
        // between program and metadata update) go back to 0xFF so the
        // append-only AND-programming semantics hold.
        owning_bank.scrubTail(block, ptr);
    }
}

std::uint64_t
FlashArray::materializedBlocks() const
{
    std::uint64_t total = 0;
    for (const auto &b : banks_)
        total += b.materializedBlocks();
    return total;
}

bool
FlashArray::outOfSpec() const
{
    for (const auto &b : banks_) {
        if (b.outOfSpec())
            return true;
    }
    return false;
}

} // namespace envy
