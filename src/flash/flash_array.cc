#include "flash/flash_array.hh"

#include "common/logging.hh"

namespace envy {

FlashArray::FlashArray(const Geometry &geom, const FlashTiming &timing,
                       bool store_data, StatGroup *parent)
    : StatGroup("flash", parent),
      statPagesProgrammed(this, "pagesProgrammed",
                          "pages programmed into the array"),
      statPagesInvalidated(this, "pagesInvalidated",
                           "pages marked dead by copy-on-write/clean"),
      statSegmentErases(this, "segmentErases",
                        "whole-segment erase operations"),
      statPageReads(this, "pageReads", "page reads via the wide path"),
      geom_(geom),
      timing_(timing),
      storeData_(store_data)
{
    if (const char *problem = geom_.validate())
        ENVY_FATAL("bad geometry: ", problem);

    banks_.reserve(geom_.numBanks);
    for (std::uint32_t b = 0; b < geom_.numBanks; ++b)
        banks_.emplace_back(geom_.pageSize, geom_.blockBytes,
                            geom_.blocksPerChip, timing_, store_data);

    segments_.resize(geom_.numSegments());
    for (auto &s : segments_)
        s.owner.assign(geom_.pagesPerSegment(), ownerDead);
}

FlashArray::SegmentState &
FlashArray::state(SegmentId seg)
{
    ENVY_ASSERT(seg.valid() && seg.value() < segments_.size(),
                "bad segment id");
    return segments_[seg.value()];
}

const FlashArray::SegmentState &
FlashArray::state(SegmentId seg) const
{
    ENVY_ASSERT(seg.valid() && seg.value() < segments_.size(),
                "bad segment id");
    return segments_[seg.value()];
}

FlashPageAddr
FlashArray::appendRaw(SegmentId seg, std::uint32_t owner,
                      std::span<const std::uint8_t> data)
{
    SegmentState &s = state(seg);
    ENVY_ASSERT(s.writePtr < geom_.pagesPerSegment(),
                "append to a full segment ", seg.value());

    const std::uint32_t slot = s.writePtr++;
    s.owner[slot] = owner;
    ++s.live;
    ++totalLive_;
    ++statPagesProgrammed;

    if (storeData_) {
        ENVY_ASSERT(data.size() >= geom_.pageSize,
                    "page data missing in functional mode");
        FlashBank &bank = banks_[geom_.bankOf(seg)];
        bank.programPage(geom_.blockOf(seg), slot, data);
        // The controller checks the status of all chips in parallel
        // after every operation (paper section 5.1).  A program
        // error here means a slot was reused without an erase -- a
        // controller bug, not a device failure.
        ENVY_ASSERT(bank.allProgrammedOk(),
                    "program error in segment ", seg.value(),
                    " slot ", slot);
    }
    return FlashPageAddr{seg, slot};
}

FlashPageAddr
FlashArray::appendPage(SegmentId seg, LogicalPageId logical,
                       std::span<const std::uint8_t> data)
{
    ENVY_ASSERT(logical.valid() && logical.value() < ownerShadow,
                "bad logical page");
    return appendRaw(seg,
                     static_cast<std::uint32_t>(logical.value()),
                     data);
}

FlashPageAddr
FlashArray::appendShadow(SegmentId seg,
                         std::span<const std::uint8_t> data)
{
    return appendRaw(seg, ownerShadow, data);
}

void
FlashArray::invalidatePage(FlashPageAddr addr)
{
    SegmentState &s = state(addr.segment);
    ENVY_ASSERT(addr.slot < s.writePtr, "invalidate of unwritten slot");
    ENVY_ASSERT(s.owner[addr.slot] != ownerDead,
                "double invalidate of segment ", addr.segment.value(),
                " slot ", addr.slot);
    s.owner[addr.slot] = ownerDead;
    ENVY_ASSERT(s.live > 0, "live underflow");
    --s.live;
    --totalLive_;
    ++statPagesInvalidated;
}

void
FlashArray::readPage(FlashPageAddr addr, std::span<std::uint8_t> out)
{
    const SegmentState &s = state(addr.segment);
    ENVY_ASSERT(addr.slot < s.writePtr, "read of unwritten slot");
    ++statPageReads;
    if (!storeData_)
        return;
    banks_[geom_.bankOf(addr.segment)].readPage(
        geom_.blockOf(addr.segment), addr.slot, out);
}

LogicalPageId
FlashArray::pageOwner(FlashPageAddr addr) const
{
    const SegmentState &s = state(addr.segment);
    if (addr.slot >= s.writePtr || s.owner[addr.slot] >= ownerShadow)
        return LogicalPageId::invalid();
    return LogicalPageId(s.owner[addr.slot]);
}

void
FlashArray::convertToShadow(FlashPageAddr addr)
{
    SegmentState &s = state(addr.segment);
    ENVY_ASSERT(addr.slot < s.writePtr &&
                    s.owner[addr.slot] < ownerShadow,
                "only a live page can become a shadow");
    s.owner[addr.slot] = ownerShadow;
    // Still counted live: the cleaner must carry shadows along.
}

bool
FlashArray::pageIsShadow(FlashPageAddr addr) const
{
    const SegmentState &s = state(addr.segment);
    return addr.slot < s.writePtr &&
           s.owner[addr.slot] == ownerShadow;
}

void
FlashArray::forEachShadow(
    SegmentId seg,
    const std::function<void(std::uint32_t)> &fn) const
{
    const SegmentState &s = state(seg);
    for (std::uint32_t slot = 0; slot < s.writePtr; ++slot) {
        if (s.owner[slot] == ownerShadow)
            fn(slot);
    }
}

bool
FlashArray::pageLive(FlashPageAddr addr) const
{
    return pageOwner(addr).valid();
}

std::uint64_t
FlashArray::freeSlots(SegmentId seg) const
{
    return geom_.pagesPerSegment() - state(seg).writePtr;
}

std::uint64_t
FlashArray::liveCount(SegmentId seg) const
{
    return state(seg).live;
}

std::uint64_t
FlashArray::invalidCount(SegmentId seg) const
{
    const SegmentState &s = state(seg);
    return s.writePtr - s.live;
}

std::uint64_t
FlashArray::usedSlots(SegmentId seg) const
{
    return state(seg).writePtr;
}

double
FlashArray::utilization(SegmentId seg) const
{
    return static_cast<double>(state(seg).live) /
           static_cast<double>(geom_.pagesPerSegment());
}

std::uint64_t
FlashArray::eraseCycles(SegmentId seg) const
{
    return state(seg).eraseCycles;
}

Tick
FlashArray::eraseSegment(SegmentId seg)
{
    SegmentState &s = state(seg);
    ENVY_ASSERT(s.live == 0, "erasing segment ", seg.value(),
                " with ", s.live, " live pages");
    std::fill(s.owner.begin(), s.owner.begin() + s.writePtr, ownerDead);
    s.writePtr = 0;
    ++s.eraseCycles;
    ++statSegmentErases;
    return banks_[geom_.bankOf(seg)].eraseSegment(geom_.blockOf(seg));
}

void
FlashArray::forEachLive(
    SegmentId seg,
    const std::function<void(std::uint32_t, LogicalPageId)> &fn) const
{
    const SegmentState &s = state(seg);
    for (std::uint32_t slot = 0; slot < s.writePtr; ++slot) {
        if (s.owner[slot] < ownerShadow)
            fn(slot, LogicalPageId(s.owner[slot]));
    }
}

void
FlashArray::restoreWear(SegmentId seg, std::uint64_t cycles)
{
    state(seg).eraseCycles = cycles;
    FlashBank &bank = banks_[geom_.bankOf(seg)];
    for (std::uint32_t c = 0; c < geom_.pageSize; ++c)
        bank.chip(c).restoreCycles(geom_.blockOf(seg), cycles);
}

bool
FlashArray::outOfSpec() const
{
    for (const auto &b : banks_) {
        if (b.outOfSpec())
            return true;
    }
    return false;
}

} // namespace envy
