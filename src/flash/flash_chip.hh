/**
 * @file
 * Model of a single byte-wide Flash chip (paper §2).
 *
 * The chip behaves like an EPROM in its default read-array mode; all
 * other functions go through the Command User Interface (CUI).  A
 * program operation can only clear bits (1 -> 0); restoring bits
 * requires erasing a whole block.  Program and erase durations grow
 * with wear and the chip records a spec "failure" once an operation
 * overruns its rated window — existing data stays readable (§2).
 *
 * The chip is a passive device: callers sequence CUI commands and are
 * told how long each operation takes; there is no internal clock.
 *
 * Cell contents live in a BankPageStore.  A standalone chip owns a
 * one-lane store; a chip inside a FlashBank is a lane view over the
 * bank's shared page-major store, so a whole bank page is one
 * contiguous range and the bank can move it in bulk.
 */

#ifndef ENVY_FLASH_FLASH_CHIP_HH
#define ENVY_FLASH_FLASH_CHIP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "flash/flash_timing.hh"
#include "flash/page_store.hh"

namespace envy {

/** CUI command codes (modelled after Intel 28F-series parts). */
enum class FlashCmd : std::uint8_t
{
    ReadArray = 0xFF,
    ReadStatus = 0x70,
    ClearStatus = 0x50,
    ProgramSetup = 0x40,
    EraseSetup = 0x20,
    EraseConfirm = 0xD0,
    Suspend = 0xB0,
    Resume = 0xD0,
};

/** Status register bits. */
struct FlashStatus
{
    static constexpr std::uint8_t ready = 0x80;
    static constexpr std::uint8_t suspended = 0x40;
    static constexpr std::uint8_t eraseError = 0x20;
    static constexpr std::uint8_t programError = 0x10;
};

class FlashChip
{
  public:
    /**
     * Standalone chip owning its cell storage.
     *
     * @param block_bytes       bytes per erase block
     * @param num_blocks        erase blocks on the chip
     * @param timing            device timing/endurance parameters
     * @param store_data        keep actual cell contents (functional
     *                          mode) or only block state (metadata-only
     *                          mode used by 2 GB-scale simulations)
     */
    FlashChip(std::uint32_t block_bytes, std::uint32_t num_blocks,
              const FlashTiming &timing, bool store_data);

    /**
     * Chip as lane @p lane of a bank-shared page store (byte j of
     * every bank page lives in chip j).  A null @p store means
     * metadata-only mode.
     */
    FlashChip(std::uint32_t block_bytes, std::uint32_t num_blocks,
              const FlashTiming &timing, BankPageStore *store,
              std::uint32_t lane);

    std::uint64_t capacity() const
    {
        return std::uint64_t(blockBytes_) * numBlocks_;
    }
    std::uint32_t blockBytes() const { return blockBytes_; }
    std::uint32_t numBlocks() const { return numBlocks_; }
    bool storesData() const { return storeData_; }

    /** Read-array access; only legal when no operation is active. */
    std::uint8_t read(std::uint64_t addr) const;

    /**
     * Issue a CUI command.  ProgramSetup must be followed by a call to
     * programByte(); EraseSetup by eraseBlock() (which models the
     * confirm cycle internally).
     */
    void writeCommand(FlashCmd cmd);

    /**
     * Program one byte (after ProgramSetup).  Bits can only be
     * cleared; programming models the internal program/verify loop.
     *
     * @return the time the operation occupies the chip.
     */
    Tick programByte(std::uint64_t addr, std::uint8_t value);

    /**
     * Erase one block (after EraseSetup).  Restores all bytes to 0xFF
     * and consumes one program/erase cycle.
     *
     * @return the time the operation occupies the chip.
     */
    Tick eraseBlock(std::uint32_t block);

    /** Status register, as returned by the ReadStatus command. */
    std::uint8_t status() const { return status_; }

    /** Program/erase cycles a block has consumed. */
    std::uint64_t blockCycles(std::uint32_t block) const;

    /** Restore a block's cycle count (image loading only). */
    void restoreCycles(std::uint32_t block, std::uint64_t cycles);

    /**
     * Restore a block's spec-failed latch (image loading / persistent
     * reopen): block recorded, part out of spec, but no status bit —
     * the failing operation's status was handled before the save.
     */
    void restoreSpecFailed(std::uint32_t block)
    {
        specFailed_[block] = true;
        outOfSpec_ = true;
    }

    /** Worst wear across all blocks. */
    std::uint64_t maxCycles() const;

    /**
     * True once any operation overran its specified window.  Per §2
     * this is flash "failure": data remains readable, the part is
     * simply out of spec.
     */
    bool outOfSpec() const { return outOfSpec_; }

    /** True if any operation on @p block overran its rated window. */
    bool blockSpecFailed(std::uint32_t block) const;

    /** Blocks that have spec-failed, ascending. */
    std::vector<std::uint32_t> specFailedBlocks() const;

    /**
     * Fault injection: make the next status check see a program
     * (erase) spec-failure on @p block, exactly as a wear overrun
     * would — status bit latched until ClearStatus, block recorded,
     * part out of spec.
     */
    void forceProgramSpecFailure(std::uint32_t block);
    void forceEraseSpecFailure(std::uint32_t block);

  private:
    // The bank's bulk fast path applies the *net* per-chip effect of
    // a page-wide ProgramSetup+programByte / EraseSetup+eraseBlock
    // sequence without pageSize CUI round trips.  The helpers below
    // keep chip state authoritative; FlashBank is the only caller and
    // its slow path is the differential oracle for their semantics.
    friend class FlashBank;

    enum class Mode { ReadArray, ReadStatus, ProgramPending,
                      ErasePending };

    bool inReadArray() const { return mode_ == Mode::ReadArray; }

    /**
     * Read-array mode with a clean status register — the state every
     * lane holds between bulk bank operations.  When all lanes are
     * lockstep-idle the bank's per-page CUI bookkeeping (mode reset,
     * status checks) is a no-op on every chip, so FlashBank caches
     * the conjunction instead of walking pageSize chips per page.
     */
    bool lockstepIdle() const
    {
        return mode_ == Mode::ReadArray &&
               status_ == FlashStatus::ready;
    }

    /** Net CUI effect of ProgramSetup + programByte (any mode). */
    void applyBankProgram()
    {
        mode_ = Mode::ReadArray;
        status_ &= ~FlashStatus::suspended;
    }

    /** programByte's 0 -> 1 rejection: latch the error bit only. */
    void noteProgramError()
    {
        status_ |= FlashStatus::programError;
    }

    /** programByte's wear-overrun branch. */
    void noteProgramSpecFail(std::uint32_t block)
    {
        specFail(block, FlashStatus::programError);
    }

    /** Net CUI effect of EraseSetup + eraseBlock (data handled by
     *  the bank through the shared store). */
    void applyBankErase(std::uint32_t block, bool overrun)
    {
        mode_ = Mode::ReadArray;
        status_ &= ~FlashStatus::suspended;
        ++cycles_[block];
        if (overrun)
            specFail(block, FlashStatus::eraseError);
    }

    std::uint32_t blockBytes_;
    std::uint32_t numBlocks_;
    FlashTiming timing_;
    bool storeData_;

    void specFail(std::uint32_t block, std::uint8_t status_bit);

    std::unique_ptr<BankPageStore> ownStore_; //!< standalone chips
    BankPageStore *store_ = nullptr;          //!< null: metadata-only
    std::uint32_t lane_ = 0;
    std::vector<std::uint64_t> cycles_; //!< per-block wear
    std::vector<bool> specFailed_;      //!< per-block overrun record
    Mode mode_ = Mode::ReadArray;
    std::uint8_t status_ = FlashStatus::ready;
    bool outOfSpec_ = false;
};

} // namespace envy

#endif // ENVY_FLASH_FLASH_CHIP_HH
