/**
 * @file
 * Sparse, page-major backing store for a bank of Flash chips.
 *
 * The paper's data path is page-wide (§3.3): byte j of a bank page
 * lives in chip j.  Storing each chip's cells in its own dense vector
 * makes a bank page a strided gather and forces the full 2 GB Fig-12
 * functional geometry to materialize up front.  This store flips the
 * layout: one buffer per erase block, page-major, so bank page p of
 * block b is the contiguous range [p*laneBytes, (p+1)*laneBytes) and
 * the chips become per-lane views (lane j = byte j of every page).
 *
 * Blocks are materialized lazily on the first program that actually
 * clears a bit; erase releases the block's buffer (erased cells are
 * all ones, so "absent" and "erased" are indistinguishable to
 * readers).  Memory therefore scales with *touched* blocks, not with
 * array capacity.
 *
 * With a persist::BankBacking the same lifecycle runs against a
 * MAP_SHARED file region instead of anonymous vectors: materialize
 * fills the mapped range with 0xFF and flips the durable block map,
 * release clears the map and punches the range back to a hole — so
 * the sparse O(touched-blocks) cost holds on disk too, and the cells
 * survive process death (docs/PERSISTENCE.md).
 */

#ifndef ENVY_FLASH_PAGE_STORE_HH
#define ENVY_FLASH_PAGE_STORE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hh"

namespace envy {

namespace persist {
class BankBacking;
} // namespace persist

class BankPageStore
{
  public:
    /**
     * @param lane_bytes       bytes per page (= chips viewing the
     *                         store; 1 for a standalone chip)
     * @param pages_per_block  pages in one erase block (= the chip's
     *                         blockBytes: one byte per chip per page)
     * @param num_blocks       erase blocks per chip
     * @param metrics          optional registry for materialization
     *                         counters (flash.blocks_materialized /
     *                         flash.blocks_released)
     * @param backing          optional durable backing; cells then
     *                         live in the mapped store file and the
     *                         persisted block map is authoritative
     */
    BankPageStore(std::uint32_t lane_bytes,
                  std::uint32_t pages_per_block,
                  std::uint32_t num_blocks,
                  obs::MetricsRegistry *metrics = nullptr,
                  persist::BankBacking *backing = nullptr);

    std::uint32_t laneBytes() const { return laneBytes_; }
    std::uint32_t pagesPerBlock() const { return pagesPerBlock_; }
    std::uint32_t numBlocks() const { return numBlocks_; }

    /** True once the block holds a buffer (some bit was cleared). */
    bool materialized(std::uint32_t block) const;

    /** Blocks currently holding a buffer (RSS is proportional). */
    std::uint64_t materializedBlocks() const
    {
        return materializedCount_;
    }

    /**
     * Contiguous view of one bank page, or an empty span if the block
     * is unmaterialized (all cells erased, i.e. 0xFF).
     */
    std::span<const std::uint8_t>
    pageIfMaterialized(std::uint32_t block, std::uint32_t page_off) const;

    /**
     * Mutable view of one bank page; materializes the block (filled
     * with 0xFF) if needed.  Callers check pageIfMaterialized() first
     * when the write might be a no-op, to preserve sparseness.
     */
    std::span<std::uint8_t> pageForWrite(std::uint32_t block,
                                         std::uint32_t page_off);

    /** One cell, through a chip's lane view; 0xFF if unmaterialized. */
    std::uint8_t readByte(std::uint32_t block, std::uint32_t page_off,
                          std::uint32_t lane) const;

    /** Write one cell through a chip's lane view (materializes). */
    void writeByte(std::uint32_t block, std::uint32_t page_off,
                   std::uint32_t lane, std::uint8_t value);

    /**
     * Lazy erase: drop the block's buffer.  The next read sees 0xFF
     * without any fill having happened.  Idempotent, so every chip of
     * a bank may issue it for the same block erase.
     */
    void release(std::uint32_t block);

    /**
     * Restart repair (persistent mode): cells are programmed before
     * the segment metadata is updated, so a crash can leave written
     * bytes beyond the recorded write pointer.  Re-erase the tail
     * [from_page, pagesPerBlock) of a materialized block back to
     * 0xFF so append-only semantics hold after reopen.
     */
    void scrubTail(std::uint32_t block, std::uint32_t from_page);

  private:
    std::uint64_t blockBytes() const
    {
        return std::uint64_t(laneBytes_) * pagesPerBlock_;
    }

    std::uint32_t laneBytes_;
    std::uint32_t pagesPerBlock_;
    std::uint32_t numBlocks_;
    std::vector<std::vector<std::uint8_t>> blocks_; //!< anonymous mode
    persist::BankBacking *backing_ = nullptr; //!< durable mode
    std::uint64_t materializedCount_ = 0;
    obs::Counter metMaterialized_;
    obs::Counter metReleased_;
};

} // namespace envy

#endif // ENVY_FLASH_PAGE_STORE_HH
