/**
 * @file
 * A bank of byte-wide Flash chips with a page-wide data path.
 *
 * Following §3.3 / Figure 4 of the paper, a bank gangs `pageSize`
 * chips side by side so that one memory cycle moves a whole page
 * (byte j of the page lives in chip j).  The smallest independently
 * erasable unit of a bank is one erase block across every chip — a
 * *segment*.  Page p of the segment built from block b is byte
 * (b * blockBytes + p) of each chip.
 *
 * Cell contents live in a shared, page-major BankPageStore so a bank
 * page is one contiguous range.  programPage/readPage/eraseSegment
 * have bulk fast paths that perform one wear/timing computation and
 * one contiguous copy per page instead of pageSize per-chip CUI
 * round trips; the original byte-at-a-time sequences are retained
 * (slow_dataplane ctor flag, or the ENVY_SLOW_DATAPLANE environment
 * variable via FlashArray) as the differential-test oracle.  Both
 * paths are bit-exact: same data, wear, status registers and
 * spec-failure latching.
 */

#ifndef ENVY_FLASH_FLASH_BANK_HH
#define ENVY_FLASH_FLASH_BANK_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "flash/flash_chip.hh"
#include "flash/page_store.hh"

namespace envy {

class FlashBank
{
  public:
    /**
     * @param chips_per_bank  width of the data path in bytes
     * @param block_bytes     erase-block bytes per chip (= pages per
     *                        segment)
     * @param blocks_per_chip segments hosted by this bank
     * @param timing          chip timing parameters
     * @param store_data      functional (true) or metadata-only mode
     * @param slow_dataplane  route page operations through the
     *                        byte-at-a-time CUI oracle
     * @param metrics         optional registry for the backing
     *                        store's materialization counters
     * @param backing         optional durable home for the bank's
     *                        cell data (persist::BankBacking)
     */
    FlashBank(std::uint32_t chips_per_bank, std::uint32_t block_bytes,
              std::uint32_t blocks_per_chip, const FlashTiming &timing,
              bool store_data, bool slow_dataplane = false,
              obs::MetricsRegistry *metrics = nullptr,
              persist::BankBacking *backing = nullptr);

    std::uint32_t pageSize() const { return chipsPerBank_; }
    std::uint32_t pagesPerSegment() const { return blockBytes_; }
    std::uint32_t segments() const { return blocksPerChip_; }
    bool storesData() const { return storeData_; }
    bool slowDataplane() const { return slowDataplane_; }

    /** Erase blocks currently backed by a buffer (sparse store). */
    std::uint64_t materializedBlocks() const
    {
        return store_ ? store_->materializedBlocks() : 0;
    }

    /**
     * Read byte offset @p page_off of local segment @p block
     * through the wide
     * path: one cycle, one byte per chip.
     */
    Tick readPage(std::uint32_t block, std::uint32_t page_off,
                  std::span<std::uint8_t> out) const;

    /**
     * Program a whole page: every chip programs its byte in parallel,
     * so the operation takes one (wear-adjusted) program time, not
     * pageSize of them.  The controller checks all chips' status in
     * parallel (§5.1).
     *
     * @return time the bank is busy.
     */
    Tick programPage(std::uint32_t block, std::uint32_t page_off,
                     std::span<const std::uint8_t> data);

    /**
     * Erase local segment @p block (the same block in every chip, all
     * in parallel).
     *
     * @return time the bank is busy.
     */
    Tick eraseSegment(std::uint32_t block);

    /** Parallel status check across all chips (§5.1). */
    bool allReady() const;

    /** Parallel status check: no chip flagged a program error. */
    bool allProgrammedOk() const;

    /** Parallel status check: no chip flagged an erase error. */
    bool allErasedOk() const;

    /** ClearStatus on every chip (after handling a failure). */
    void clearStatus();

    /** True if any chip exceeded its specified operation window. */
    bool outOfSpec() const;

    /** True if any chip spec-failed an operation on @p block. */
    bool blockSpecFailed(std::uint32_t block) const;

    /** Blocks on which any chip has spec-failed, ascending. */
    std::vector<std::uint32_t> specFailedBlocks() const;

    /** Wear of local segment @p block (cycles, same on all chips). */
    std::uint64_t segmentCycles(std::uint32_t block) const;

    /**
     * Restart repair: re-erase cells of local segment @p block beyond
     * page @p from_page (see BankPageStore::scrubTail).  No-op in
     * metadata-only mode.
     */
    void scrubTail(std::uint32_t block, std::uint32_t from_page)
    {
        if (store_)
            store_->scrubTail(block, from_page);
    }

    FlashChip &chip(std::uint32_t i)
    {
        // Arbitrary CUI access may leave this lane in any mode, so
        // the lockstep cache cannot survive it; the next bulk
        // operation revalidates with one full scan.
        lanesLockstep_ = false;
        return chips_[i];
    }
    const FlashChip &chip(std::uint32_t i) const { return chips_[i]; }

  private:
    /**
     * True iff every chip is lockstep-idle (read-array mode, clean
     * status).  In that state programPage's per-lane mode reset and
     * the parallel status checks are all no-ops, so the bulk paths
     * skip their pageSize-wide chip walks — the dominant cost of a
     * page program once the data movement itself is one memcpy.
     * Lazily revalidated: cleared pessimistically by anything that
     * can perturb a lane (external chip() access, latched errors,
     * ClearStatus), re-established by one scan on the next query.
     * Callers already serialize bank operations (the chips' own
     * mode/status fields are plain members), so the mutable cache
     * adds no new concurrency requirement.  Never consulted in
     * slow-dataplane mode, where per-chip CUI sequences mutate lanes
     * without telling the bank.
     */
    bool lanesLockstep() const
    {
        if (slowDataplane_)
            return false;
        if (lanesLockstep_)
            return true;
        for (const auto &c : chips_) {
            if (!c.lockstepIdle())
                return false;
        }
        lanesLockstep_ = true;
        return true;
    }
    std::uint64_t byteAddr(std::uint32_t block, std::uint32_t page_off) const
    {
        return std::uint64_t(block) * blockBytes_ + page_off;
    }

    Tick programPageSlow(std::uint32_t block, std::uint32_t page_off,
                         std::span<const std::uint8_t> data);
    Tick readPageSlow(std::uint32_t block, std::uint32_t page_off,
                      std::span<std::uint8_t> out) const;
    Tick eraseSegmentSlow(std::uint32_t block);

    std::uint32_t chipsPerBank_;
    std::uint32_t blockBytes_;
    std::uint32_t blocksPerChip_;
    bool storeData_;
    bool slowDataplane_;
    FlashTiming timing_;
    std::unique_ptr<BankPageStore> store_; //!< null in metadata mode
    std::vector<FlashChip> chips_;
    //! Cached "every lane is lockstep-idle"; see lanesLockstep().
    mutable bool lanesLockstep_ = false;
};

} // namespace envy

#endif // ENVY_FLASH_FLASH_BANK_HH
