/**
 * @file
 * The whole Flash array: banks, segments and per-page bookkeeping.
 *
 * The array is append-only within a segment: slots [0, writePtr) of a
 * segment hold data (valid or invalidated), the rest are erased and
 * writable.  This matches the paper's cleaning mechanics (Fig 5):
 * cleaning copies the live pages of a victim, in order, to the head of
 * an empty segment, and new flushes append behind them.
 *
 * Each physical page slot records the logical page that owns it (the
 * reverse mapping the cleaner needs to update the page table when it
 * relocates data).  Actual cell contents live in the chips and are
 * optional: metadata-only mode lets the 2 GB-geometry experiments run
 * without 2 GB of host RAM while exercising identical state machines.
 */

#ifndef ENVY_FLASH_FLASH_ARRAY_HH
#define ENVY_FLASH_FLASH_ARRAY_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/geometry.hh"
#include "common/types.hh"
#include "flash/flash_bank.hh"
#include "obs/metrics.hh"
#include "sim/stats.hh"

namespace envy {

namespace persist {
struct FlashPersist;
} // namespace persist

class FlashArray : public StatGroup
{
  public:
    /**
     * @param slow_dataplane  route all page operations through the
     *                        byte-at-a-time CUI oracle instead of the
     *                        bulk fast path.  Also forced on by the
     *                        ENVY_SLOW_DATAPLANE environment variable
     *                        (any value but "0").
     * @param persist         optional durable backing: segment
     *                        metadata is written through to the store
     *                        file and (in functional mode) cell data
     *                        lives in its mapped data region
     */
    FlashArray(const Geometry &geom, const FlashTiming &timing,
               bool store_data, StatGroup *parent = nullptr,
               obs::MetricsRegistry *metrics = nullptr,
               bool slow_dataplane = false,
               persist::FlashPersist *persist = nullptr);

    const Geometry &geom() const { return geom_; }
    const FlashTiming &timing() const { return timing_; }
    bool storesData() const { return storeData_; }
    bool slowDataplane() const { return slowDataplane_; }

    /** Erase blocks with a backing buffer, across all banks (the
     *  sparse store's memory footprint is proportional to this). */
    std::uint64_t materializedBlocks() const;

    std::uint64_t numSegments() const { return geom_.numSegments(); }
    PageCount pagesPerSegment() const
    {
        return geom_.pagesPerSegment();
    }

    // ---- page-level operations ----------------------------------

    /**
     * Program the next free slot of @p seg with @p logical's data.
     * @p data may be empty in metadata-only mode.
     *
     * A program spec-failure (wear overrun or injected fault) retires
     * the failing slot and retries the next one transparently; use
     * tryAppendPage() to observe individual failures.
     *
     * @return address of the slot that was written.
     */
    FlashPageAddr appendPage(SegmentId seg, LogicalPageId logical,
                             std::span<const std::uint8_t> data = {});

    /** Outcome of a single (fallible) program attempt. */
    struct AppendResult
    {
        FlashPageAddr addr{}; //!< valid only when !failed
        bool failed = false;  //!< slot spec-failed and was retired
    };

    /**
     * One program attempt into the next free slot of @p seg.  On a
     * spec-failure (the §5.1 parallel status check reports a program
     * error from a wear overrun or an injected fault) the slot is
     * retired — marked permanently unusable, surviving erase — and
     * the caller retries, usually into the next slot.
     */
    AppendResult tryAppendPage(SegmentId seg, LogicalPageId logical,
                               std::span<const std::uint8_t> data = {});

    /** Mark a previously valid slot dead (copy-on-write, Fig 3). */
    void invalidatePage(FlashPageAddr addr);

    // ---- shadow pages (§6 atomic-transaction extension) ----------
    //
    // A shadow is a superseded page copy that must survive cleaning
    // so a transaction can roll back to it.  Shadows count as live
    // (they occupy space and the cleaner must relocate them) but have
    // no logical owner.

    /** Turn a live slot into a shadow (copy-on-write under a txn). */
    void convertToShadow(FlashPageAddr addr);

    /** Program a relocated shadow into the next free slot of @p seg. */
    FlashPageAddr appendShadow(SegmentId seg,
                               std::span<const std::uint8_t> data = {});

    /** True if the slot holds a pinned shadow copy. */
    bool pageIsShadow(FlashPageAddr addr) const;

    /** Visit the shadow slots of a segment in slot order. */
    void forEachShadow(
        SegmentId seg,
        const std::function<void(SlotId slot)> &fn) const;

    /** Read a page through the wide path (functional mode). */
    void readPage(FlashPageAddr addr, std::span<std::uint8_t> out);

    /** Owner of a slot; invalid id if the slot is dead or erased. */
    LogicalPageId pageOwner(FlashPageAddr addr) const;

    /** True if the slot holds live data. */
    bool pageLive(FlashPageAddr addr) const;

    // ---- segment-level operations -------------------------------

    /** Free (erased, writable) slots remaining in a segment. */
    PageCount freeSlots(SegmentId seg) const;

    /** Live (valid) pages in a segment. */
    PageCount liveCount(SegmentId seg) const;

    /** Dead (invalidated) pages in a segment. */
    PageCount invalidCount(SegmentId seg) const;

    /** Used slots (valid + dead) in a segment. */
    PageCount usedSlots(SegmentId seg) const;

    /** Utilization of the segment: live / capacity. */
    double utilization(SegmentId seg) const;

    /** Erase cycles the segment has consumed. */
    std::uint64_t eraseCycles(SegmentId seg) const;

    /**
     * Erase a segment.  All pages must already be dead: erasing live
     * data is a cleaner bug.
     *
     * @return device busy time.
     */
    Tick eraseSegment(SegmentId seg);

    /**
     * Visit the live pages of a segment in slot order (the order the
     * cleaner preserves, §4.3).  @p fn may not mutate the segment.
     */
    void forEachLive(
        SegmentId seg,
        const std::function<void(SlotId slot,
                                 LogicalPageId)> &fn) const;

    /** Any chip out of spec (operations overran their rated window)? */
    bool outOfSpec() const;

    /**
     * Observer: invoked after any operation that changes a segment's
     * free/live/invalid counts (append, invalidate, erase, slot
     * retirement).  SegmentSpace uses it to maintain incremental
     * per-segment indexes so the cleaning policies can pick victims
     * and destinations without O(numSegments) rescans.
     */
    std::function<void(SegmentId)> segmentChangedHook;

    // ---- fault injection & block retirement ----------------------

    /**
     * Test hooks: consulted before every program (erase).  Returning
     * true injects a spec-failure into the operation, exercising the
     * same retire/retry path a natural wear overrun takes.
     */
    std::function<bool(SegmentId, SlotId slot)> programFaultHook;
    std::function<bool(SegmentId)> eraseFaultHook;

    /** True if the slot has been retired (spec-failed program). */
    bool slotRetired(FlashPageAddr addr) const;

    /** Retired slots in a segment (they survive erase). */
    PageCount retiredCount(SegmentId seg) const;

    /**
     * Retire the slot at the segment's write pointer without
     * programming it (image restoration of prior retirements).
     */
    void retireNextSlot(SegmentId seg);

    /**
     * Re-mark an erased slot beyond the write pointer as retired
     * (image restoration of a retirement that survived an erase).
     */
    void restoreRetiredAhead(SegmentId seg, SlotId slot);

    /** True if any chip spec-failed an operation on this segment. */
    bool segmentSpecFailed(SegmentId seg) const;

    /** Segments whose erase block has spec-failed on any chip. */
    std::vector<SegmentId> specFailedSegments() const;

    /**
     * Restore a segment's erase-cycle count (image loading only):
     * sets the segment counter and the matching block counter in
     * every chip of the owning bank.
     */
    void restoreWear(SegmentId seg, std::uint64_t cycles);

    /**
     * Rebuild all segment state (write pointers, owners, retired
     * marks, wear, spec-fail latches) from the persistent store file
     * after a restart, and scrub any cells programmed ahead of the
     * recorded write pointers back to 0xFF.  Requires a persist
     * backing; does not fire segmentChangedHook (SegmentSpace
     * re-indexes during recovery).
     */
    void restoreFromPersist();

    /** Direct bank access for the timing model / tests. */
    FlashBank &bank(BankId i) { return banks_[i.value()]; }
    const FlashBank &bank(BankId i) const { return banks_[i.value()]; }

    /** Total live pages across the array. */
    PageCount totalLive() const { return totalLive_; }

    // Statistics (public so experiment harnesses can read them).
    Counter statPagesProgrammed;
    Counter statPagesInvalidated;
    Counter statSegmentErases;
    Counter statPageReads;
    Counter statSlotsRetired;
    Counter statProgramSpecFailures;
    Counter statEraseRetries;
    Counter statEraseSpecFailures;

    // Observability metrics (docs/OBSERVABILITY.md); null-safe
    // no-ops when constructed without a registry.
    obs::Counter metPrograms;
    obs::Counter metInvalidations;
    obs::Counter metErases;
    obs::Counter metPageReads;
    obs::Counter metSlotsRetired;

  private:
    struct SegmentState
    {
        /** Owner per used slot; ownerDead marks invalidated pages. */
        std::vector<std::uint32_t> owner;
        /** Spec-failed slots; physical damage, survives erase. */
        std::vector<bool> retired;
        std::uint32_t writePtr = 0;
        std::uint32_t live = 0;
        std::uint32_t retiredTotal = 0; //!< retired slots, whole segment
        std::uint32_t retiredAhead = 0; //!< retired in [writePtr, cap)
        std::uint64_t eraseCycles = 0;
    };

    static constexpr std::uint32_t ownerDead = 0xFFFFFFFFu;
    static constexpr std::uint32_t ownerShadow = 0xFFFFFFFEu;

    FlashPageAddr appendRaw(SegmentId seg, std::uint32_t owner,
                            std::span<const std::uint8_t> data);
    AppendResult tryAppendRaw(SegmentId seg, std::uint32_t owner,
                              std::span<const std::uint8_t> data);
    void retireCurrentSlot(SegmentId seg, SegmentState &s);

    SegmentState &state(SegmentId seg);
    const SegmentState &state(SegmentId seg) const;

    Geometry geom_;
    FlashTiming timing_;
    bool storeData_;
    bool slowDataplane_;
    std::vector<FlashBank> banks_;
    std::vector<SegmentState> segments_;
    PageCount totalLive_;
    persist::FlashPersist *persist_ = nullptr;
};

} // namespace envy

#endif // ENVY_FLASH_FLASH_ARRAY_HH
