/**
 * @file
 * Size and time unit helpers shared across the simulator.
 */

#ifndef ENVY_COMMON_UNITS_HH
#define ENVY_COMMON_UNITS_HH

#include <cstdint>

namespace envy {

constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/** Ticks are nanoseconds. */
constexpr std::uint64_t nanoseconds(std::uint64_t n) { return n; }
constexpr std::uint64_t microseconds(std::uint64_t n) { return n * 1000ull; }
constexpr std::uint64_t
milliseconds(std::uint64_t n)
{
    return n * 1000ull * 1000ull;
}
constexpr std::uint64_t
seconds(std::uint64_t n)
{
    return n * 1000ull * 1000ull * 1000ull;
}

/** Convert a tick count to (floating point) seconds. */
constexpr double ticksToSeconds(std::uint64_t t) { return t * 1e-9; }

} // namespace envy

#endif // ENVY_COMMON_UNITS_HH
