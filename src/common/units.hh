/**
 * @file
 * Size and time unit helpers shared across the simulator.
 */

#ifndef ENVY_COMMON_UNITS_HH
#define ENVY_COMMON_UNITS_HH

#include <cstdint>

#include "common/types.hh"

namespace envy {

constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/** Ticks are nanoseconds. */
constexpr Tick nanoseconds(std::uint64_t n) { return n; }
constexpr Tick microseconds(std::uint64_t n) { return n * 1000ull; }
constexpr Tick
milliseconds(std::uint64_t n)
{
    return n * 1000ull * 1000ull;
}
constexpr Tick
seconds(std::uint64_t n)
{
    return n * 1000ull * 1000ull * 1000ull;
}

/** Convert a tick count to (floating point) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Explicit lossy conversion for rates and ratios. */
constexpr double asDouble(PageCount n) { return static_cast<double>(n.value()); }
constexpr double asDouble(ByteCount n) { return static_cast<double>(n.value()); }
constexpr double asDouble(std::uint64_t n) { return static_cast<double>(n); }

} // namespace envy

#endif // ENVY_COMMON_UNITS_HH
