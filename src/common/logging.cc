#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace envy {

namespace {
bool g_verbose = true;
}

void setVerbose(bool verbose) { g_verbose = verbose; }
bool verbose() { return g_verbose; }

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::cout << "info: " << msg << std::endl;
}

} // namespace envy
