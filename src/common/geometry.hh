/**
 * @file
 * Physical and logical geometry of an eNVy system.
 *
 * Defaults reproduce the simulated system of the paper's Figure 12:
 * 2 GB of Flash built from 2048 1MB x 8 chips, organised as 8 banks of
 * 256 byte-wide chips.  A page is one byte per chip across a bank
 * (256 bytes); a segment is one 64 KB erase block across a bank
 * (16 MB, i.e. 65536 pages); the array therefore has 128 segments.
 *
 * Derived quantities carry their unit in the type: page counts are
 * PageCount, byte totals are ByteCount, bank coordinates are BankId.
 * Crossing units (pages -> bytes) happens only through the named
 * helpers here, never through bare multiplication at call sites.
 */

#ifndef ENVY_COMMON_GEOMETRY_HH
#define ENVY_COMMON_GEOMETRY_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace envy {

struct Geometry
{
    /** Bytes transferred per memory cycle == chips per bank. */
    std::uint32_t pageSize = 256;
    /** Bytes per independently erasable block inside one chip. */
    std::uint32_t blockBytes = 64 * KiB;
    /** Erase blocks per chip (chip capacity = blockBytes * this). */
    std::uint32_t blocksPerChip = 16;
    /** Number of banks of pageSize chips. */
    std::uint32_t numBanks = 8;

    /**
     * Host-visible pages.  0 means "derive from targetUtilization".
     * Array utilization is logicalPages / physicalPages.
     */
    std::uint64_t logicalPages = 0;
    /** Fraction of the array holding live data (paper limit: 0.8). */
    double targetUtilization = 0.8;

    /** Slots in the battery-backed SRAM FIFO write buffer.
     *  0 means "one segment's worth" (the paper's choice). */
    std::uint32_t writeBufferPages = 0;

    // ---- derived quantities -------------------------------------

    /** Pages per segment: one byte per chip, so blockBytes pages. */
    PageCount pagesPerSegment() const { return PageCount(blockBytes); }

    ByteCount segmentBytes() const
    {
        return ByteCount(std::uint64_t{blockBytes} * pageSize);
    }

    // Segment/chip totals are computed in 64 bits: numBanks,
    // blocksPerChip and pageSize are 32-bit knobs whose product can
    // exceed 32 bits for configuration-sweep geometries.
    std::uint64_t numSegments() const
    {
        return std::uint64_t{numBanks} * blocksPerChip;
    }

    PageCount physicalPages() const
    {
        return PageCount(numSegments() * pagesPerSegment().value());
    }

    ByteCount flashBytes() const
    {
        return ByteCount(physicalPages().value() * pageSize);
    }

    ByteCount chipBytes() const
    {
        return ByteCount(std::uint64_t{blockBytes} * blocksPerChip);
    }

    std::uint64_t numChips() const
    {
        return std::uint64_t{numBanks} * pageSize;
    }

    PageCount effectiveLogicalPages() const
    {
        if (logicalPages)
            return PageCount(logicalPages);
        return PageCount(static_cast<std::uint64_t>(
            targetUtilization * asDouble(physicalPages())));
    }

    ByteCount logicalBytes() const
    {
        return ByteCount(effectiveLogicalPages().value() * pageSize);
    }

    PageCount effectiveWriteBufferPages() const
    {
        return writeBufferPages ? PageCount(writeBufferPages)
                                : pagesPerSegment();
    }

    /** 6-byte entries, sized for the whole physical space (§3.3). */
    ByteCount pageTableBytes() const
    {
        return ByteCount(physicalPages().value() * 6);
    }

    /** Bytes occupied by @p n pages (the only pages->bytes bridge). */
    ByteCount bytesForPages(PageCount n) const
    {
        return ByteCount(n.value() * pageSize);
    }

    /** Which bank owns a segment. */
    BankId bankOf(SegmentId seg) const
    {
        ENVY_ASSERT(seg.valid() && seg.value() < numSegments(),
                    "geometry: bankOf of bad segment ", seg);
        return BankId(static_cast<std::uint32_t>(
            seg.value() / blocksPerChip));
    }

    /** Erase-block index of a segment inside its bank's chips. */
    std::uint32_t blockOf(SegmentId seg) const
    {
        ENVY_ASSERT(seg.valid() && seg.value() < numSegments(),
                    "geometry: blockOf of bad segment ", seg);
        return static_cast<std::uint32_t>(seg.value() % blocksPerChip);
    }

    /** Validate invariants; returns a problem description or nullptr. */
    const char *validate() const;

    /** Paper Figure 12 system: 2 GB, 128 x 16 MB segments. */
    static Geometry paperSystem() { return Geometry{}; }

    /**
     * A small system for functional tests and examples: 8 MB flash
     * (16 segments of 512 KB), 4 KB pages-per-segment... see fields.
     */
    static Geometry
    tiny()
    {
        Geometry g;
        g.pageSize = 64;
        g.blockBytes = 2 * KiB;   // 2048 pages per segment
        g.blocksPerChip = 8;
        g.numBanks = 2;           // 16 segments, 2 MB flash
        return g;
    }
};

} // namespace envy

#endif // ENVY_COMMON_GEOMETRY_HH
