/**
 * @file
 * Physical and logical geometry of an eNVy system.
 *
 * Defaults reproduce the simulated system of the paper's Figure 12:
 * 2 GB of Flash built from 2048 1MB x 8 chips, organised as 8 banks of
 * 256 byte-wide chips.  A page is one byte per chip across a bank
 * (256 bytes); a segment is one 64 KB erase block across a bank
 * (16 MB, i.e. 65536 pages); the array therefore has 128 segments.
 */

#ifndef ENVY_COMMON_GEOMETRY_HH
#define ENVY_COMMON_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace envy {

struct Geometry
{
    /** Bytes transferred per memory cycle == chips per bank. */
    std::uint32_t pageSize = 256;
    /** Bytes per independently erasable block inside one chip. */
    std::uint32_t blockBytes = 64 * KiB;
    /** Erase blocks per chip (chip capacity = blockBytes * this). */
    std::uint32_t blocksPerChip = 16;
    /** Number of banks of pageSize chips. */
    std::uint32_t numBanks = 8;

    /**
     * Host-visible pages.  0 means "derive from targetUtilization".
     * Array utilization is logicalPages / physicalPages.
     */
    std::uint64_t logicalPages = 0;
    /** Fraction of the array holding live data (paper limit: 0.8). */
    double targetUtilization = 0.8;

    /** Slots in the battery-backed SRAM FIFO write buffer.
     *  0 means "one segment's worth" (the paper's choice). */
    std::uint32_t writeBufferPages = 0;

    // ---- derived quantities -------------------------------------

    /** Pages per segment: one byte per chip, so blockBytes pages. */
    std::uint64_t pagesPerSegment() const { return blockBytes; }

    std::uint64_t segmentBytes() const
    {
        return std::uint64_t(blockBytes) * pageSize;
    }

    std::uint32_t numSegments() const { return numBanks * blocksPerChip; }

    std::uint64_t physicalPages() const
    {
        return std::uint64_t(numSegments()) * pagesPerSegment();
    }

    std::uint64_t flashBytes() const
    {
        return physicalPages() * pageSize;
    }

    std::uint64_t chipBytes() const
    {
        return std::uint64_t(blockBytes) * blocksPerChip;
    }

    std::uint32_t numChips() const { return numBanks * pageSize; }

    std::uint64_t effectiveLogicalPages() const
    {
        if (logicalPages)
            return logicalPages;
        return static_cast<std::uint64_t>(
            targetUtilization * static_cast<double>(physicalPages()));
    }

    std::uint64_t logicalBytes() const
    {
        return effectiveLogicalPages() * pageSize;
    }

    std::uint32_t effectiveWriteBufferPages() const
    {
        return writeBufferPages ? writeBufferPages
                                : static_cast<std::uint32_t>(
                                      pagesPerSegment());
    }

    /** 6-byte entries, sized for the whole physical space (§3.3). */
    std::uint64_t pageTableBytes() const { return physicalPages() * 6; }

    /** Which bank owns a segment. */
    std::uint32_t bankOf(SegmentId seg) const
    {
        return static_cast<std::uint32_t>(seg.value() / blocksPerChip);
    }

    /** Erase-block index of a segment inside its bank's chips. */
    std::uint32_t blockOf(SegmentId seg) const
    {
        return static_cast<std::uint32_t>(seg.value() % blocksPerChip);
    }

    /** Validate invariants; returns a problem description or nullptr. */
    const char *validate() const;

    /** Paper Figure 12 system: 2 GB, 128 x 16 MB segments. */
    static Geometry paperSystem() { return Geometry{}; }

    /**
     * A small system for functional tests and examples: 8 MB flash
     * (16 segments of 512 KB), 4 KB pages-per-segment... see fields.
     */
    static Geometry
    tiny()
    {
        Geometry g;
        g.pageSize = 64;
        g.blockBytes = 2 * KiB;   // 2048 pages per segment
        g.blocksPerChip = 8;
        g.numBanks = 2;           // 16 segments, 2 MB flash
        return g;
    }
};

} // namespace envy

#endif // ENVY_COMMON_GEOMETRY_HH
