/**
 * @file
 * Fundamental value types used throughout the eNVy simulator.
 *
 * Strongly-typed identifiers prevent the classic flash-translation bug
 * of mixing logical and physical page numbers.  Each identifier is a
 * thin wrapper around a 64-bit integer with an explicit invalid value.
 */

#ifndef ENVY_COMMON_TYPES_HH
#define ENVY_COMMON_TYPES_HH

#include <cstdint>
#include <functional>
#include <limits>

namespace envy {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Byte address within the linear logical (host-visible) array. */
using Addr = std::uint64_t;

/**
 * Strongly typed integer identifier.
 *
 * @tparam Tag   Phantom tag type distinguishing id families.
 */
template <typename Tag>
class Id
{
  public:
    using value_type = std::uint64_t;

    static constexpr value_type invalidValue =
        std::numeric_limits<value_type>::max();

    constexpr Id() : value_(invalidValue) {}
    constexpr explicit Id(value_type v) : value_(v) {}

    /** Sentinel id that maps to nothing. */
    static constexpr Id invalid() { return Id(); }

    constexpr value_type value() const { return value_; }
    constexpr bool valid() const { return value_ != invalidValue; }

    constexpr bool operator==(const Id &) const = default;
    constexpr auto operator<=>(const Id &) const = default;

  private:
    value_type value_;
};

struct LogicalPageTag {};
struct SegmentTag {};
struct PartitionTag {};

/** Index of a 256-byte page in the host-visible logical address space. */
using LogicalPageId = Id<LogicalPageTag>;

/** Index of a flash segment (one erase unit across a whole bank). */
using SegmentId = Id<SegmentTag>;

/** Index of a group of adjacent segments managed together (hybrid). */
using PartitionId = Id<PartitionTag>;

/**
 * Physical location of a page inside the flash array: a (segment, slot)
 * pair.  Slot k of segment s is byte k of erase block s in each chip of
 * the owning bank (Fig 4 of the paper).
 */
struct FlashPageAddr
{
    SegmentId segment;
    std::uint32_t slot = 0;

    constexpr bool valid() const { return segment.valid(); }
    constexpr bool operator==(const FlashPageAddr &) const = default;
};

} // namespace envy

namespace std {

template <typename Tag>
struct hash<envy::Id<Tag>>
{
    size_t
    operator()(const envy::Id<Tag> &id) const noexcept
    {
        return std::hash<std::uint64_t>()(id.value());
    }
};

} // namespace std

#endif // ENVY_COMMON_TYPES_HH
