/**
 * @file
 * Fundamental value types used throughout the eNVy simulator.
 *
 * Strongly-typed identifiers prevent the classic flash-translation bug
 * of mixing the address spaces the paper layers on top of each other:
 * logical page numbers, physical (segment, slot) coordinates, bank
 * indices and SRAM write-buffer slots.  Each identifier is a thin
 * wrapper around an unsigned integer with an explicit invalid value.
 *
 * Ids of different families are deliberately non-interconvertible:
 * construction and assignment across families is deleted (not merely
 * absent), so `SlotId s = pageId;` is a compile error with a readable
 * diagnostic.  Raw integers convert only through the explicit
 * constructor, and only without narrowing (enforced by -Wconversion).
 * Typed arithmetic exists only where it is meaningful — an id plus a
 * count of the same family yields an id; ids never add to each other.
 */

#ifndef ENVY_COMMON_TYPES_HH
#define ENVY_COMMON_TYPES_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace envy {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Byte address within the linear logical (host-visible) array. */
using Addr = std::uint64_t;

/**
 * Strongly typed integer identifier.
 *
 * @tparam Tag   Phantom tag type distinguishing id families.
 * @tparam Rep   Underlying representation (defaults to 64 bits).
 */
template <typename Tag, typename Rep = std::uint64_t>
class Id
{
  public:
    using value_type = Rep;

    static constexpr value_type invalidValue =
        std::numeric_limits<value_type>::max();

    constexpr Id() : value_(invalidValue) {}
    constexpr explicit Id(value_type v) : value_(v) {}

    /** Ids of other families never convert, not even explicitly. */
    template <typename OtherTag, typename OtherRep>
    Id(const Id<OtherTag, OtherRep> &) = delete;
    template <typename OtherTag, typename OtherRep>
    Id &operator=(const Id<OtherTag, OtherRep> &) = delete;

    constexpr Id(const Id &) = default;
    constexpr Id &operator=(const Id &) = default;

    /** Sentinel id that maps to nothing. */
    static constexpr Id invalid() { return Id(); }

    constexpr value_type value() const { return value_; }
    constexpr bool valid() const { return value_ != invalidValue; }

    constexpr bool operator==(const Id &) const = default;
    constexpr auto operator<=>(const Id &) const = default;

  private:
    value_type value_;
};

template <typename Tag, typename Rep>
std::ostream &
operator<<(std::ostream &os, const Id<Tag, Rep> &id)
{
    if (id.valid())
        return os << id.value();
    return os << "<invalid>";
}

/**
 * Strongly typed count of uniform things (pages, bytes).
 *
 * Counts of different units do not interconvert — a page count is not
 * a byte count — and conversion between them happens only through
 * named geometry helpers that multiply in the page size explicitly.
 */
template <typename Tag, typename Rep = std::uint64_t>
class Count
{
  public:
    using value_type = Rep;

    constexpr Count() : value_(0) {}
    constexpr explicit Count(value_type v) : value_(v) {}

    template <typename OtherTag, typename OtherRep>
    Count(const Count<OtherTag, OtherRep> &) = delete;
    template <typename OtherTag, typename OtherRep>
    Count &operator=(const Count<OtherTag, OtherRep> &) = delete;

    constexpr Count(const Count &) = default;
    constexpr Count &operator=(const Count &) = default;

    constexpr value_type value() const { return value_; }

    constexpr bool operator==(const Count &) const = default;
    constexpr auto operator<=>(const Count &) const = default;

    constexpr Count operator+(Count o) const
    {
        return Count(value_ + o.value_);
    }
    constexpr Count operator-(Count o) const
    {
        return Count(value_ - o.value_);
    }
    constexpr Count &operator+=(Count o) { value_ += o.value_; return *this; }
    constexpr Count &operator-=(Count o) { value_ -= o.value_; return *this; }

  private:
    value_type value_;
};

template <typename Tag, typename Rep>
std::ostream &
operator<<(std::ostream &os, const Count<Tag, Rep> &c)
{
    return os << c.value();
}

struct LogicalPageTag {};
struct SegmentTag {};
struct PartitionTag {};
struct SlotTag {};
struct BankTag {};
struct BufferSlotTag {};

struct PageCountTag {};
struct ByteCountTag {};

/** Index of a 256-byte page in the host-visible logical address space. */
using LogicalPageId = Id<LogicalPageTag>;

/** Index of a flash segment (one erase unit across a whole bank). */
using SegmentId = Id<SegmentTag>;

/** Index of a group of adjacent segments managed together (hybrid). */
using PartitionId = Id<PartitionTag>;

/** Index of a page slot inside one segment (byte k of the block). */
using SlotId = Id<SlotTag, std::uint32_t>;

/** Index of a bank of chips inside the flash array. */
using BankId = Id<BankTag, std::uint32_t>;

/** Index of a page slot in the battery-backed SRAM write buffer. */
using BufferSlotId = Id<BufferSlotTag, std::uint32_t>;

/** A number of pages (logical or physical — same granule). */
using PageCount = Count<PageCountTag>;

/** A number of bytes. */
using ByteCount = Count<ByteCountTag>;

// Typed arithmetic, only where it means something: an id offset by a
// count of its own granule is an id; the distance between two ids is
// a count.  Ids never add to ids.

constexpr LogicalPageId
operator+(LogicalPageId page, PageCount n)
{
    return LogicalPageId(page.value() + n.value());
}

/** Distance from @p lo to @p hi; @p hi must not precede @p lo. */
constexpr PageCount
operator-(LogicalPageId hi, LogicalPageId lo)
{
    return PageCount(hi.value() - lo.value());
}

constexpr Addr
operator+(Addr a, ByteCount n)
{
    return a + n.value();
}

/** The slot after @p s in program order within the same segment. */
constexpr SlotId
nextSlot(SlotId s)
{
    return SlotId(s.value() + 1u);
}

/**
 * Physical location of a page inside the flash array: a (segment, slot)
 * pair.  Slot k of segment s is byte k of erase block s in each chip of
 * the owning bank (Fig 4 of the paper).
 */
struct FlashPageAddr
{
    SegmentId segment;
    SlotId slot{0};

    constexpr bool valid() const { return segment.valid(); }
    constexpr bool operator==(const FlashPageAddr &) const = default;
};

} // namespace envy

namespace std {

template <typename Tag, typename Rep>
struct hash<envy::Id<Tag, Rep>>
{
    size_t
    operator()(const envy::Id<Tag, Rep> &id) const noexcept
    {
        return std::hash<Rep>()(id.value());
    }
};

} // namespace std

#endif // ENVY_COMMON_TYPES_HH
