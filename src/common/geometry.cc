#include "common/geometry.hh"

namespace envy {

const char *
Geometry::validate() const
{
    if (pageSize == 0 || (pageSize & (pageSize - 1)) != 0)
        return "pageSize must be a nonzero power of two";
    if (blockBytes == 0)
        return "blockBytes must be nonzero";
    if (blocksPerChip == 0)
        return "blocksPerChip must be nonzero";
    if (numBanks == 0)
        return "numBanks must be nonzero";
    if (numSegments() < 3)
        return "need at least 3 segments (one reserve, two data)";
    if (targetUtilization <= 0.0 || targetUtilization >= 1.0)
        return "targetUtilization must be in (0, 1)";
    // Slots inside a segment are addressed with 32-bit SlotIds whose
    // top value is the invalid sentinel; segment ids must also fit the
    // 15-bit field packed into page-table entries.
    if (pagesPerSegment().value() >= SlotId::invalidValue)
        return "blockBytes exceeds the addressable slots per segment";
    // Live data must fit with one segment held in reserve and at
    // least some free headroom for cleaning to make progress.
    const PageCount usable =
        PageCount((numSegments() - 1) * pagesPerSegment().value());
    if (effectiveLogicalPages() >= usable)
        return "logical space leaves no free headroom for cleaning";
    if (effectiveWriteBufferPages() < PageCount(4))
        return "write buffer too small";
    return nullptr;
}

} // namespace envy
