/**
 * @file
 * Clang thread-safety annotation macros and the annotated mutex
 * wrappers the shared-state classes use (docs/STATIC_ANALYSIS.md §4).
 *
 * The macros expand to Clang's thread-safety attributes when the
 * compiler understands them and to nothing otherwise, so GCC builds
 * are unaffected.  The conventions future concurrency PRs must follow:
 *
 *  - every class with shared mutable state owns a `mutable envy::Mutex
 *    mu_` and marks the mutable members `ENVY_GUARDED_BY(mu_)`;
 *  - public methods take `MutexLock lock(mu_);` as their first
 *    statement; private helpers that expect the lock are suffixed
 *    `Locked` and annotated `ENVY_REQUIRES(mu_)`;
 *  - callbacks (policy hooks, std::function members) are never invoked
 *    with the callee's own lock held if they can re-enter the class —
 *    run them after the locked region instead;
 *  - no blocking syscall (fdatasync/msync/read/write) inside a locked
 *    region — enforced by envy_analyze rule `lock-discipline`.
 */

#ifndef ENVY_COMMON_THREAD_ANNOTATIONS_HH
#define ENVY_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ENVY_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ENVY_THREAD_ANNOTATION
#define ENVY_THREAD_ANNOTATION(x)
#endif

#define ENVY_CAPABILITY(x) ENVY_THREAD_ANNOTATION(capability(x))
#define ENVY_SCOPED_CAPABILITY ENVY_THREAD_ANNOTATION(scoped_lockable)
#define ENVY_GUARDED_BY(x) ENVY_THREAD_ANNOTATION(guarded_by(x))
#define ENVY_PT_GUARDED_BY(x) ENVY_THREAD_ANNOTATION(pt_guarded_by(x))
#define ENVY_REQUIRES(...) \
    ENVY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ENVY_EXCLUDES(...) \
    ENVY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ENVY_ACQUIRE(...) \
    ENVY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ENVY_RELEASE(...) \
    ENVY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ENVY_RETURN_CAPABILITY(x) \
    ENVY_THREAD_ANNOTATION(lock_returned(x))
#define ENVY_ACQUIRE_SHARED(...) \
    ENVY_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ENVY_RELEASE_SHARED(...) \
    ENVY_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ENVY_REQUIRES_SHARED(...) \
    ENVY_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ENVY_NO_THREAD_SAFETY_ANALYSIS \
    ENVY_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace envy {

/**
 * std::mutex with the `capability` attribute so `-Wthread-safety` can
 * reason about it.  BasicLockable, so std::condition_variable_any
 * waits on it directly.
 */
class ENVY_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ENVY_ACQUIRE() { mu_.lock(); }
    void unlock() ENVY_RELEASE() { mu_.unlock(); }

  private:
    std::mutex mu_;
};

/** RAII lock on an envy::Mutex (scoped capability). */
class ENVY_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ENVY_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() ENVY_RELEASE() { mu_.unlock(); }

    // BasicLockable, so a condition_variable_any can release the
    // mutex across a wait (the scope still ends held, matching the
    // scoped-capability contract).
    void lock() ENVY_ACQUIRE() { mu_.lock(); }
    void unlock() ENVY_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * std::shared_mutex with the capability attribute: the controller's
 * structural lock (docs/STATIC_ANALYSIS.md §4).  Exclusive = mutate
 * flash / policy / segment-space structure; shared = read flash data
 * concurrently with other readers.  BasicLockable in its exclusive
 * form, so std::condition_variable_any can wait on it.
 */
class ENVY_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() ENVY_ACQUIRE() { mu_.lock(); }
    void unlock() ENVY_RELEASE() { mu_.unlock(); }
    void lockShared() ENVY_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlockShared() ENVY_RELEASE_SHARED() { mu_.unlock_shared(); }

  private:
    std::shared_mutex mu_;
};

/** RAII exclusive lock on a SharedMutex. */
class ENVY_SCOPED_CAPABILITY ExclusiveLock
{
  public:
    explicit ExclusiveLock(SharedMutex &mu) ENVY_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~ExclusiveLock() ENVY_RELEASE() { mu_.unlock(); }

    ExclusiveLock(const ExclusiveLock &) = delete;
    ExclusiveLock &operator=(const ExclusiveLock &) = delete;

  private:
    SharedMutex &mu_;
};

/** RAII shared (reader) lock on a SharedMutex. */
class ENVY_SCOPED_CAPABILITY SharedLock
{
  public:
    explicit SharedLock(SharedMutex &mu) ENVY_ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lockShared();
    }
    ~SharedLock() ENVY_RELEASE() { mu_.unlockShared(); }

    SharedLock(const SharedLock &) = delete;
    SharedLock &operator=(const SharedLock &) = delete;

  private:
    SharedMutex &mu_;
};

} // namespace envy

#endif // ENVY_COMMON_THREAD_ANNOTATIONS_HH
