/**
 * @file
 * Error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  — the *user* asked for something impossible (bad geometry,
 *            out-of-range address); exits with an error code.
 * warn()   — something works but is suspicious or approximated.
 * inform() — purely informational status output.
 */

#ifndef ENVY_COMMON_LOGGING_HH
#define ENVY_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace envy {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benchmarks silence it). */
void setVerbose(bool verbose);
bool verbose();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace envy

#define ENVY_PANIC(...) \
    ::envy::panicImpl(__FILE__, __LINE__, ::envy::detail::format(__VA_ARGS__))

#define ENVY_FATAL(...) \
    ::envy::fatalImpl(__FILE__, __LINE__, ::envy::detail::format(__VA_ARGS__))

#define ENVY_WARN(...) \
    ::envy::warnImpl(::envy::detail::format(__VA_ARGS__))

#define ENVY_INFORM(...) \
    ::envy::informImpl(::envy::detail::format(__VA_ARGS__))

/** Invariant check that survives NDEBUG; failure is always a bug. */
#define ENVY_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::envy::panicImpl(__FILE__, __LINE__,                          \
                ::envy::detail::format("assertion failed: " #cond " ",     \
                                       ##__VA_ARGS__));                    \
        }                                                                  \
    } while (0)

#endif // ENVY_COMMON_LOGGING_HH
