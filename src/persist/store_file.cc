#include "persist/store_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "persist/checksum.hh"

namespace envy {
namespace persist {

namespace {

constexpr std::uint64_t crcFieldOff = 184; //!< after the last field

std::uint64_t
alignUp(std::uint64_t v, std::uint64_t a)
{
    return (v + a - 1) / a * a;
}

void
putU64(std::uint8_t *base, std::uint64_t off, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        base[off + std::uint64_t(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *base, std::uint64_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(base[off + std::uint64_t(i)]) << (8 * i);
    return v;
}

/** Serialise the config fields (offsets 24..136, see PERSISTENCE.md). */
void
putParams(std::uint8_t *sb, const StoreParams &p)
{
    putU64(sb, 24, p.pageSize);
    putU64(sb, 32, p.blockBytes);
    putU64(sb, 40, p.blocksPerChip);
    putU64(sb, 48, p.numBanks);
    putU64(sb, 56, p.logicalPages);
    putU64(sb, 64, p.writeBufferPages);
    putU64(sb, 72, p.storeData);
    putU64(sb, 80, p.policy);
    putU64(sb, 88, p.partitionSize);
    putU64(sb, 96, p.bufferThreshold);
    putU64(sb, 104, p.wearThreshold);
    putU64(sb, 112, p.tlbSize);
    putU64(sb, 120, p.autoDrain);
    putU64(sb, 128, p.sramBytes);
}

StoreParams
getParams(const std::uint8_t *sb)
{
    StoreParams p;
    p.pageSize = getU64(sb, 24);
    p.blockBytes = getU64(sb, 32);
    p.blocksPerChip = getU64(sb, 40);
    p.numBanks = getU64(sb, 48);
    p.logicalPages = getU64(sb, 56);
    p.writeBufferPages = getU64(sb, 64);
    p.storeData = getU64(sb, 72);
    p.policy = getU64(sb, 80);
    p.partitionSize = getU64(sb, 88);
    p.bufferThreshold = getU64(sb, 96);
    p.wearThreshold = getU64(sb, 104);
    p.tlbSize = getU64(sb, 112);
    p.autoDrain = getU64(sb, 120);
    p.sramBytes = getU64(sb, 128);
    return p;
}

std::uint32_t
superCrc(const std::uint8_t *sb)
{
    return crc32({sb, crcFieldOff});
}

enum class SuperState { Missing, Valid, Unfinished, Foreign };

/**
 * Classify @p path: no file / fresh (Missing), a complete store
 * (Valid), a store whose creation died before the valid flag
 * (Unfinished — safe to wipe), or some other file (Foreign — never
 * touch it).
 */
SuperState
classify(const std::string &path, StoreParams *params_out,
         std::string *error_out)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (error_out)
            *error_out = "cannot open '" + path + "': " +
                         std::strerror(errno);
        return SuperState::Missing;
    }
    std::uint8_t sb[StoreFile::superBytes];
    std::uint64_t got = 0;
    while (got < sizeof(sb)) {
        const ssize_t n = ::pread(fd, sb + got, sizeof(sb) - got,
                                  static_cast<off_t>(got));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        got += static_cast<std::uint64_t>(n);
    }
    ::close(fd);

    if (got == 0)
        return SuperState::Missing; // empty file: treat as fresh
    if (got < sizeof(sb) ||
        std::memcmp(sb, StoreFile::magic, 8) != 0) {
        if (error_out)
            *error_out = "'" + path + "' is not an eNVy store file";
        return SuperState::Foreign;
    }
    if (getU64(sb, 8) != StoreFile::version) {
        if (error_out)
            *error_out = "'" + path + "' has unsupported version " +
                         std::to_string(getU64(sb, 8));
        return SuperState::Foreign;
    }
    if (superCrc(sb) != static_cast<std::uint32_t>(
                            getU64(sb, crcFieldOff))) {
        if (error_out)
            *error_out = "'" + path + "' superblock checksum mismatch";
        return SuperState::Foreign;
    }
    if ((getU64(sb, 16) & 1) == 0)
        return SuperState::Unfinished;
    if (params_out)
        *params_out = getParams(sb);
    return SuperState::Valid;
}

} // namespace

void
StoreFile::computeLayout()
{
    const std::uint64_t cap = pagesPerSegment();
    metaOff_ = superBytes;
    metaStride_ = alignUp(segOwnersOff + 5 * cap, 8);
    bitmapOff_ = alignUp(metaOff_ + numSegments() * metaStride_, 4096);
    const std::uint64_t bitmapBytes =
        params_.numBanks * params_.blocksPerChip;
    dataOff_ = alignUp(bitmapOff_ + bitmapBytes, 4096);
    blockDataBytes_ = params_.pageSize * params_.blockBytes;
    fileBytes_ = dataOff_ + (params_.storeData
                                 ? numSegments() * blockDataBytes_
                                 : 0);
}

void
StoreFile::writeSuperblock(bool valid)
{
    std::uint8_t *sb = pool_->span(0, superBytes).data();
    std::memset(sb, 0, superBytes);
    std::memcpy(sb, magic, 8);
    putU64(sb, 8, version);
    putU64(sb, 16, valid ? 1 : 0);
    putParams(sb, params_);
    putU64(sb, 136, metaOff_);
    putU64(sb, 144, metaStride_);
    putU64(sb, 152, bitmapOff_);
    putU64(sb, 160, dataOff_);
    putU64(sb, 168, blockDataBytes_);
    putU64(sb, 176, fileBytes_);
    putU64(sb, crcFieldOff, superCrc(sb));
    pool_->sync(0, superBytes);
}

StoreFile::StoreFile(const std::string &path, const StoreParams &want)
    : params_(want)
{
    ENVY_ASSERT(params_.pageSize > 0 && params_.blockBytes > 0 &&
                params_.blocksPerChip > 0 && params_.numBanks > 0 &&
                params_.sramBytes > 0,
                "persist: degenerate store parameters");
    computeLayout();

    StoreParams disk;
    std::string error;
    switch (classify(path, &disk, &error)) {
      case SuperState::Missing:
        break;
      case SuperState::Foreign:
        ENVY_FATAL("persist: ", error);
        break;
      case SuperState::Unfinished:
        // Creation died before the valid flag: nothing in the file
        // was ever acknowledged, so start over.
        if (std::remove(path.c_str()) != 0)
            ENVY_FATAL("persist: cannot remove unfinished store '",
                       path, "': ", std::strerror(errno));
        break;
      case SuperState::Valid:
        if (!(disk == want))
            ENVY_FATAL("persist: '", path, "' holds a store with a "
                       "different geometry/config; refusing to "
                       "reformat it");
        reopened_ = true;
        break;
    }

    pool_ = std::make_unique<MmapPool>(path, fileBytes_);
    if (!reopened_)
        writeSuperblock(false);
}

bool
StoreFile::readParams(const std::string &path, StoreParams &out,
                      std::string &error)
{
    switch (classify(path, &out, &error)) {
      case SuperState::Valid:
        return true;
      case SuperState::Unfinished:
        error = "'" + path + "' is an unfinished store (creation "
                "never completed)";
        return false;
      case SuperState::Missing:
        if (error.empty())
            error = "cannot open '" + path + "'";
        return false;
      case SuperState::Foreign:
        return false;
    }
    return false;
}

void
StoreFile::markValid()
{
    writeSuperblock(true);
}

std::span<std::uint8_t>
StoreFile::segMeta(SegmentId seg)
{
    ENVY_ASSERT(seg.value() < numSegments(),
                "persist: bad segment ", seg);
    return pool_->span(metaOff_ + seg.value() * metaStride_,
                       metaStride_);
}

std::span<const std::uint8_t>
StoreFile::segMeta(SegmentId seg) const
{
    ENVY_ASSERT(seg.value() < numSegments(),
                "persist: bad segment ", seg);
    return const_cast<StoreFile *>(this)->pool_->span(
        metaOff_ + seg.value() * metaStride_, metaStride_);
}

std::uint64_t
StoreFile::blockIndex(std::uint32_t bank, std::uint32_t block) const
{
    ENVY_ASSERT(bank < params_.numBanks &&
                block < params_.blocksPerChip,
                "persist: bad block (", bank, ", ", block, ")");
    return std::uint64_t(bank) * params_.blocksPerChip + block;
}

bool
StoreFile::blockMaterialized(std::uint32_t bank,
                             std::uint32_t block) const
{
    const std::uint64_t idx = blockIndex(bank, block);
    return const_cast<StoreFile *>(this)->pool_->span(
               bitmapOff_ + idx, 1)[0] != 0;
}

void
StoreFile::setBlockMaterialized(std::uint32_t bank,
                                std::uint32_t block, bool on)
{
    const std::uint64_t idx = blockIndex(bank, block);
    pool_->span(bitmapOff_ + idx, 1)[0] = on ? 1 : 0;
}

std::uint64_t
StoreFile::materializedCount(std::uint32_t bank) const
{
    std::uint64_t n = 0;
    for (std::uint32_t b = 0; b < params_.blocksPerChip; ++b)
        n += blockMaterialized(bank, b) ? 1 : 0;
    return n;
}

std::span<std::uint8_t>
StoreFile::blockData(std::uint32_t bank, std::uint32_t block)
{
    ENVY_ASSERT(params_.storeData != 0,
                "persist: block data in metadata-only mode");
    const std::uint64_t idx = blockIndex(bank, block);
    return pool_->span(dataOff_ + idx * blockDataBytes_,
                       blockDataBytes_);
}

void
StoreFile::punchBlock(std::uint32_t bank, std::uint32_t block)
{
    ENVY_ASSERT(params_.storeData != 0,
                "persist: block punch in metadata-only mode");
    const std::uint64_t idx = blockIndex(bank, block);
    pool_->punch(dataOff_ + idx * blockDataBytes_, blockDataBytes_);
}

} // namespace persist
} // namespace envy
