/**
 * @file
 * CommitPipeline: the group-commit epoch thread for a concurrent
 * persistent store (docs/PERSISTENCE.md §group-commit).
 *
 * Serial stores journal inline: every EnvyStore::persistFlush() runs
 * its own drain + append.  Under the PR 8 sharded controller that
 * would serialize every durable caller behind a whole-journal flush,
 * so the pipeline batches instead: callers publish a request and
 * block until an *epoch* that started after their request completes.
 * One epoch serves every caller that arrived while the previous one
 * ran —
 *
 *   1. quiesce the controller (structural lock exclusive; with
 *      Controller::setPersistentConcurrent() even SRAM-hit writers
 *      hold it shared, so the capture sees no torn writes) and
 *      append the dirty SRAM ranges as ONE Group record;
 *   2. outside the quiesce, fdatasync the journal and msync the
 *      store file if any caller asked for the power-loss barrier
 *      (commitWait) — the data path keeps running meanwhile;
 *   3. auto-checkpoint when the journal has grown past its
 *      threshold: the SRAM image is copied under a second short
 *      quiesce, the temp-write + rename happens outside it.
 *
 * Durability contract, three tiers: flushWait() returns once the
 * caller's SRAM mutations are in the journal file (SIGKILL-durable,
 * the ack point the crash harness leans on); syncWait() additionally
 * waits for the journal fdatasync — the group-commit *log force*,
 * power-loss durable for everything the journal covers, one device
 * barrier shared by the whole epoch; commitWait() waits for the full
 * barrier (journal fdatasync + store-file msync), power-loss durable
 * including flash-resident pages the journal no longer carries.
 *
 * Lock order (docs/INTERNALS.md): the pipeline's own mu_ is a leaf
 * taken by callers and the epoch thread; the epoch thread acquires
 * structMu_ (via Controller::quiesce) and then journalMu_ (inside
 * MetaJournal) with mu_ released, so callers never wait on a lock
 * the epoch thread holds across a syscall.
 */

#ifndef ENVY_PERSIST_COMMIT_PIPELINE_HH
#define ENVY_PERSIST_COMMIT_PIPELINE_HH

#include <condition_variable>
#include <cstdint>
#include <thread>

#include "common/thread_annotations.hh"
#include "obs/metrics.hh"

namespace envy {

class Controller;
class SramArray;

namespace persist {

class PersistBackend;

class CommitPipeline
{
  public:
    CommitPipeline(Controller &ctl, PersistBackend &backend,
                   SramArray &sram,
                   obs::MetricsRegistry *metrics = nullptr);
    ~CommitPipeline();

    CommitPipeline(const CommitPipeline &) = delete;
    CommitPipeline &operator=(const CommitPipeline &) = delete;

    /** Launch the epoch thread (idempotent). */
    void start();

    /**
     * Drain pending requests through one final epoch, then stop and
     * join the thread (idempotent; safe to restart).  Callers still
     * blocked in flushWait/commitWait are released.
     */
    void stop();

    bool running() const;

    /**
     * Block until an epoch started after this call has journaled the
     * dirty SRAM (SIGKILL-durable).  Many concurrent callers share
     * one epoch — the group-commit point.
     */
    void flushWait();

    /**
     * Block until the epoch's journal fdatasync also completed (the
     * shared log force).  Cheaper than commitWait: the store-file
     * msync — whose cost scales with the dirty flash pages of the
     * whole batch — is left to the checkpoint/commit schedule.
     */
    void syncWait();

    /** Block until the epoch's fdatasync + store-file msync barrier
     *  also completed (power-loss durable). */
    void commitWait();

  private:
    void run();

    Controller &ctl_;
    PersistBackend &backend_;
    SramArray &sram_;

    obs::Counter metEpochs_;   //!< persist.group_commit.epochs
    obs::Histogram metBatch_;  //!< persist.group_commit.batch
    obs::Histogram metEpochUs_; //!< persist.group_commit.epoch_us

    mutable Mutex mu_;
    std::condition_variable_any workCv_; //!< wakes the epoch thread
    std::condition_variable_any doneCv_; //!< wakes blocked callers
    bool stop_ ENVY_GUARDED_BY(mu_) = false;
    bool pendingFlush_ ENVY_GUARDED_BY(mu_) = false;
    bool pendingJournalSync_ ENVY_GUARDED_BY(mu_) = false;
    bool pendingSync_ ENVY_GUARDED_BY(mu_) = false;
    //! Callers coalesced into the next epoch (batch-size metric).
    std::uint64_t batchPending_ ENVY_GUARDED_BY(mu_) = 0;
    std::uint64_t epochSeq_ ENVY_GUARDED_BY(mu_) = 0;
    std::uint64_t flushDone_ ENVY_GUARDED_BY(mu_) = 0;
    std::uint64_t journalSyncDone_ ENVY_GUARDED_BY(mu_) = 0;
    std::uint64_t syncDone_ ENVY_GUARDED_BY(mu_) = 0;

    std::thread thread_;
};

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_COMMIT_PIPELINE_HH
