#include "persist/flash_backing.hh"

#include <cstring>

#include "common/logging.hh"
#include "persist/meta_journal.hh"

namespace envy {
namespace persist {

namespace {

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(p[i]) << (8 * i);
    return v;
}

void
storeU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

void
storeU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

} // namespace

std::span<std::uint8_t>
FlashMetaView::meta(SegmentId seg) const
{
    return file_.segMeta(seg);
}

std::uint32_t
FlashMetaView::writePtr(SegmentId seg) const
{
    return loadU32(meta(seg).data() + StoreFile::segWritePtrOff);
}

std::uint64_t
FlashMetaView::eraseCycles(SegmentId seg) const
{
    return loadU64(meta(seg).data() + StoreFile::segCyclesOff);
}

bool
FlashMetaView::specFailed(SegmentId seg) const
{
    return meta(seg)[StoreFile::segSpecFailedOff] != 0;
}

std::uint32_t
FlashMetaView::owner(SegmentId seg, SlotId slot) const
{
    ENVY_ASSERT(slot.value() < file_.pagesPerSegment(),
                "persist: bad slot ", slot);
    return ~loadU32(meta(seg).data() + StoreFile::segOwnersOff +
                    4 * std::uint64_t(slot.value()));
}

bool
FlashMetaView::retired(SegmentId seg, SlotId slot) const
{
    ENVY_ASSERT(slot.value() < file_.pagesPerSegment(),
                "persist: bad slot ", slot);
    return meta(seg)[file_.segRetiredOff() + slot.value()] != 0;
}

void
FlashMetaView::setWritePtr(SegmentId seg, std::uint32_t ptr)
{
    barrier();
    storeU32(meta(seg).data() + StoreFile::segWritePtrOff, ptr);
}

void
FlashMetaView::setEraseCycles(SegmentId seg, std::uint64_t cycles)
{
    barrier();
    storeU64(meta(seg).data() + StoreFile::segCyclesOff, cycles);
}

void
FlashMetaView::setSpecFailed(SegmentId seg)
{
    barrier();
    meta(seg)[StoreFile::segSpecFailedOff] = 1;
}

void
FlashMetaView::setOwner(SegmentId seg, SlotId slot,
                        std::uint32_t owner)
{
    ENVY_ASSERT(slot.value() < file_.pagesPerSegment(),
                "persist: bad slot ", slot);
    barrier();
    storeU32(meta(seg).data() + StoreFile::segOwnersOff +
                 4 * std::uint64_t(slot.value()),
             ~owner);
}

void
FlashMetaView::setRetired(SegmentId seg, SlotId slot)
{
    ENVY_ASSERT(slot.value() < file_.pagesPerSegment(),
                "persist: bad slot ", slot);
    barrier();
    meta(seg)[file_.segRetiredOff() + slot.value()] = 1;
}

void
FlashMetaView::resetAfterErase(SegmentId seg, std::uint64_t cycles)
{
    barrier();
    std::span<std::uint8_t> m = meta(seg);
    storeU32(m.data() + StoreFile::segWritePtrOff, 0);
    storeU64(m.data() + StoreFile::segCyclesOff, cycles);
    // ~ownerDead == 0: the erased state is all-zeros, exactly what a
    // fresh file hole reads as.
    std::memset(m.data() + StoreFile::segOwnersOff, 0,
                4 * file_.pagesPerSegment());
}

void
BankBacking::materialize(std::uint32_t block)
{
    // Bytes first, map second: a crash between the two leaves an
    // unadvertised range that the next materialize re-fills.
    std::span<std::uint8_t> data = file_.blockData(bank_, block);
    std::memset(data.data(), 0xFF, data.size());
    file_.setBlockMaterialized(bank_, block, true);
}

void
BankBacking::release(std::uint32_t block)
{
    // Map first, punch second: a crash between the two leaves stale
    // bytes that nothing will ever read (the map is the authority).
    file_.setBlockMaterialized(bank_, block, false);
    file_.punchBlock(bank_, block);
}

FlashPersist::FlashPersist(StoreFile &file, MetaJournal *journal)
    : meta(file, journal ? FlashMetaView::Barrier([journal] {
               journal->flush();
           })
                         : FlashMetaView::Barrier())
{
    if (file.params().storeData != 0) {
        banks.reserve(file.params().numBanks);
        for (std::uint32_t b = 0;
             b < static_cast<std::uint32_t>(file.params().numBanks);
             ++b)
            banks.emplace_back(file, b);
    }
}

} // namespace persist
} // namespace envy
