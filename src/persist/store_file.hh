/**
 * @file
 * StoreFile: the on-disk layout of a persistent eNVy store.
 *
 * One sparse file (docs/PERSISTENCE.md), mapped MAP_SHARED through an
 * MmapPool:
 *
 *     [superblock 4 KiB] [segment metadata] [block map] [block data]
 *
 *  - The superblock carries the geometry/config needed to rebuild an
 *    EnvyConfig, the region offsets, a CRC-32 and a `valid` flag that
 *    is set only after the initial checkpoint — a file whose creation
 *    died half-way is recognisably fresh, never half-trusted.
 *  - Segment metadata is a fixed-stride record per segment: write
 *    pointer, erase cycles, spec-fail latch, per-slot owners and
 *    retired marks.  Owners are stored bitwise-NOT so the all-zeros
 *    content of a file hole decodes to "every slot erased": untouched
 *    segments cost no disk at all.
 *  - The block map holds one byte per (bank, block): nonzero once the
 *    block's cell data is materialized.  It is the authority on
 *    whether the data region holds cells or a hole, because holes
 *    read as zeros while erased flash reads as 0xFF.
 *  - Block data is the cell contents (functional mode only); an
 *    erased block's range is hole-punched back to zero cost.
 */

#ifndef ENVY_PERSIST_STORE_FILE_HH
#define ENVY_PERSIST_STORE_FILE_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/types.hh"
#include "persist/mmap_pool.hh"

namespace envy {
namespace persist {

/** Superblock fields: enough to reconstruct the EnvyConfig. */
struct StoreParams
{
    std::uint64_t pageSize = 0;
    std::uint64_t blockBytes = 0;
    std::uint64_t blocksPerChip = 0;
    std::uint64_t numBanks = 0;
    std::uint64_t logicalPages = 0;     //!< effective
    std::uint64_t writeBufferPages = 0; //!< effective
    std::uint64_t storeData = 0;
    std::uint64_t policy = 0;
    std::uint64_t partitionSize = 0;
    std::uint64_t bufferThreshold = 0;
    std::uint64_t wearThreshold = 0;
    std::uint64_t tlbSize = 0;
    std::uint64_t autoDrain = 0;
    std::uint64_t sramBytes = 0;

    bool operator==(const StoreParams &) const = default;
};

class StoreFile
{
  public:
    static constexpr char magic[9] = "ENVYPST1"; //!< 8 bytes on disk
    static constexpr std::uint64_t version = 1;
    static constexpr std::uint64_t superBytes = 4096;

    /**
     * Open @p path, creating the store file if absent.  An existing
     * file must carry a valid superblock matching @p want exactly
     * (fatal otherwise — silently reformatting a mismatched store
     * would destroy it); a file whose creation never completed (valid
     * flag clear) is wiped and recreated.
     */
    StoreFile(const std::string &path, const StoreParams &want);

    /** True when an existing valid store was opened (restart). */
    bool reopened() const { return reopened_; }

    const StoreParams &params() const { return params_; }
    const std::string &path() const { return pool_->path(); }

    /**
     * Read just the superblock of @p path without opening the store
     * (PersistentStore::open derives the config from it).
     */
    static bool readParams(const std::string &path, StoreParams &out,
                           std::string &error);

    /** Flip the superblock valid flag on (after initial checkpoint). */
    void markValid();

    // ---- layout ---------------------------------------------------

    std::uint64_t numSegments() const
    {
        return params_.numBanks * params_.blocksPerChip;
    }
    std::uint64_t pagesPerSegment() const { return params_.blockBytes; }
    std::uint64_t metaOff() const { return metaOff_; }
    std::uint64_t metaStride() const { return metaStride_; }
    std::uint64_t bitmapOff() const { return bitmapOff_; }
    std::uint64_t dataOff() const { return dataOff_; }
    std::uint64_t blockDataBytes() const { return blockDataBytes_; }
    std::uint64_t fileBytes() const { return fileBytes_; }

    // Per-segment metadata record offsets inside the stride.
    static constexpr std::uint64_t segWritePtrOff = 0; //!< u32
    static constexpr std::uint64_t segSpecFailedOff = 4; //!< u8
    static constexpr std::uint64_t segCyclesOff = 8;   //!< u64
    static constexpr std::uint64_t segOwnersOff = 16;  //!< u32 * cap, ~owner

    std::uint64_t segRetiredOff() const
    {
        return segOwnersOff + 4 * pagesPerSegment();
    }

    /** Whole metadata record of one segment. */
    std::span<std::uint8_t> segMeta(SegmentId seg);
    std::span<const std::uint8_t> segMeta(SegmentId seg) const;

    // ---- block map + data -----------------------------------------

    bool blockMaterialized(std::uint32_t bank,
                           std::uint32_t block) const;
    void setBlockMaterialized(std::uint32_t bank, std::uint32_t block,
                              bool on);
    std::uint64_t materializedCount(std::uint32_t bank) const;

    std::span<std::uint8_t> blockData(std::uint32_t bank,
                                      std::uint32_t block);
    void punchBlock(std::uint32_t bank, std::uint32_t block);

    /** msync everything (power-loss durability point). */
    void syncAll() { pool_->syncAll(); }

  private:
    std::uint64_t blockIndex(std::uint32_t bank,
                             std::uint32_t block) const;
    void computeLayout();
    void writeSuperblock(bool valid);

    StoreParams params_;
    std::uint64_t metaOff_ = 0;
    std::uint64_t metaStride_ = 0;
    std::uint64_t bitmapOff_ = 0;
    std::uint64_t dataOff_ = 0;
    std::uint64_t blockDataBytes_ = 0;
    std::uint64_t fileBytes_ = 0;
    bool reopened_ = false;
    std::unique_ptr<MmapPool> pool_;
};

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_STORE_FILE_HH
