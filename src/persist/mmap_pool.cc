#include "persist/mmap_pool.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace envy {
namespace persist {

MmapPool::MmapPool(const std::string &path, std::uint64_t bytes)
    : path_(path), bytes_(bytes)
{
    ENVY_ASSERT(bytes_ > 0);
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
        ENVY_FATAL("persist: cannot open '", path_,
                   "': ", std::strerror(errno));

    struct stat st{};
    if (::fstat(fd_, &st) != 0)
        ENVY_FATAL("persist: fstat '", path_,
                   "': ", std::strerror(errno));
    // Grow (sparsely) but never shrink: a larger existing file means
    // the caller's geometry is wrong, and truncating it would destroy
    // data before anyone could inspect the mismatch.
    if (static_cast<std::uint64_t>(st.st_size) > bytes_)
        ENVY_FATAL("persist: '", path_, "' is ", st.st_size,
                   " bytes but the requested layout needs only ",
                   bytes_, "; refusing to shrink it");
    if (static_cast<std::uint64_t>(st.st_size) < bytes_ &&
        ::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0)
        ENVY_FATAL("persist: ftruncate '", path_, "' to ", bytes_,
                   ": ", std::strerror(errno));

    void *map = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd_, 0);
    if (map == MAP_FAILED)
        ENVY_FATAL("persist: mmap '", path_, "' (", bytes_,
                   " bytes): ", std::strerror(errno));
    map_ = static_cast<std::uint8_t *>(map);
}

MmapPool::~MmapPool()
{
    if (map_ != nullptr)
        ::munmap(map_, bytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

std::span<std::uint8_t>
MmapPool::span()
{
    return {map_, bytes_};
}

std::span<const std::uint8_t>
MmapPool::span() const
{
    return {map_, bytes_};
}

std::span<std::uint8_t>
MmapPool::span(std::uint64_t off, std::uint64_t len)
{
    ENVY_ASSERT(off <= bytes_ && len <= bytes_ - off,
                "pool range [", off, ", +", len, ") outside ", bytes_);
    return {map_ + off, len};
}

void
MmapPool::punch(std::uint64_t off, std::uint64_t len)
{
    ENVY_ASSERT(off <= bytes_ && len <= bytes_ - off);
    if (len == 0)
        return;
    if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                    static_cast<off_t>(off),
                    static_cast<off_t>(len)) == 0)
        return;
    // tmpfs and some filesystems reject PUNCH_HOLE; zeroing keeps the
    // read-back contract (holes read as zeros) at the cost of space.
    std::memset(map_ + off, 0, len);
}

void
MmapPool::sync(std::uint64_t off, std::uint64_t len)
{
    ENVY_ASSERT(off <= bytes_ && len <= bytes_ - off);
    if (len == 0)
        return;
    // msync wants a page-aligned address; round the range out.
    const std::uint64_t page =
        static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t lo = off & ~(page - 1);
    const std::uint64_t hi = off + len;
    if (::msync(map_ + lo, hi - lo, MS_SYNC) != 0)
        ENVY_FATAL("persist: msync '", path_,
                   "': ", std::strerror(errno));
}

} // namespace persist
} // namespace envy
