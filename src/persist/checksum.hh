/**
 * @file
 * CRC-32 (IEEE 802.3, the zlib polynomial) for the persistence
 * subsystem: journal records and the store-file superblock carry one
 * so torn or corrupt on-disk state is detected, never interpreted.
 *
 * The polynomial choice is deliberate: `zlib.crc32` in Python
 * computes the same function, so tools/persist/inspect_image.py can
 * verify every checksum without reimplementing it.
 */

#ifndef ENVY_PERSIST_CHECKSUM_HH
#define ENVY_PERSIST_CHECKSUM_HH

#include <array>
#include <cstdint>
#include <span>

namespace envy {
namespace persist {

namespace detail {

/**
 * Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
 * table[k][b] extends a CRC whose low byte is @p b across k further
 * zero bytes.  Eight bytes fold per iteration instead of one, which
 * matters because the journal checksums every byte it appends — the
 * durable data path streams tens of MB/s through here.
 */
inline const std::array<std::array<std::uint32_t, 256>, 8> &
crcTables()
{
    static const std::array<std::array<std::uint32_t, 256>, 8> tables =
        [] {
            std::array<std::array<std::uint32_t, 256>, 8> t{};
            for (std::uint32_t n = 0; n < 256; ++n) {
                std::uint32_t c = n;
                for (int k = 0; k < 8; ++k)
                    c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
                t[0][n] = c;
            }
            for (std::uint32_t n = 0; n < 256; ++n) {
                std::uint32_t c = t[0][n];
                for (int k = 1; k < 8; ++k) {
                    c = t[0][c & 0xFFu] ^ (c >> 8);
                    t[k][n] = c;
                }
            }
            return t;
        }();
    return tables;
}

} // namespace detail

/** Continue a CRC-32 over @p data (start from crc32Init). */
constexpr std::uint32_t crc32Init = 0;

inline std::uint32_t
crc32(std::span<const std::uint8_t> data,
      std::uint32_t crc = crc32Init)
{
    const auto &t = detail::crcTables();
    const std::uint8_t *p = data.data();
    std::size_t n = data.size();
    crc ^= 0xFFFFFFFFu;
    while (n >= 8) {
        // Little-endian-agnostic: fold the CRC into the first four
        // bytes, then index each of the eight tables with one byte.
        const std::uint32_t lo = crc ^
            (std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
             std::uint32_t(p[2]) << 16 | std::uint32_t(p[3]) << 24);
        crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
              t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
              t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
        p += 8;
        n -= 8;
    }
    for (; n > 0; ++p, --n)
        crc = t[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_CHECKSUM_HH
