/**
 * @file
 * CRC-32 (IEEE 802.3, the zlib polynomial) for the persistence
 * subsystem: journal records and the store-file superblock carry one
 * so torn or corrupt on-disk state is detected, never interpreted.
 *
 * The polynomial choice is deliberate: `zlib.crc32` in Python
 * computes the same function, so tools/persist/inspect_image.py can
 * verify every checksum without reimplementing it.
 */

#ifndef ENVY_PERSIST_CHECKSUM_HH
#define ENVY_PERSIST_CHECKSUM_HH

#include <array>
#include <cstdint>
#include <span>

namespace envy {
namespace persist {

namespace detail {

inline const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** Continue a CRC-32 over @p data (start from crc32Init). */
constexpr std::uint32_t crc32Init = 0;

inline std::uint32_t
crc32(std::span<const std::uint8_t> data,
      std::uint32_t crc = crc32Init)
{
    const auto &table = detail::crcTable();
    crc ^= 0xFFFFFFFFu;
    for (const std::uint8_t b : data)
        crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_CHECKSUM_HH
