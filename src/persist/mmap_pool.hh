/**
 * @file
 * MmapPool: the single place in the tree that owns raw file-mapping
 * syscalls (mmap / msync / fallocate / ftruncate — the envy-lint
 * `no-raw-mmap` rule fences them in here).
 *
 * A pool is one sparse file mapped MAP_SHARED.  The file is sized
 * with ftruncate, so untouched regions are holes that cost no disk
 * and read back as zeros; `punch()` returns a region to hole state
 * (FALLOC_FL_PUNCH_HOLE, with a memset-to-zero fallback for
 * filesystems that refuse).  Because the mapping is shared, every
 * store to the span is visible to the kernel page cache immediately:
 * a SIGKILL loses nothing that was already stored through the
 * mapping, and only a power failure needs `sync()` (msync) to reach
 * the platter.  That asymmetry is what makes the fork/SIGKILL crash
 * harness a faithful test of the recovery protocol.
 */

#ifndef ENVY_PERSIST_MMAP_POOL_HH
#define ENVY_PERSIST_MMAP_POOL_HH

#include <cstdint>
#include <span>
#include <string>

namespace envy {
namespace persist {

class MmapPool
{
  public:
    /**
     * Map @p path read-write, creating it if needed, and grow it to
     * @p bytes (never shrinks an existing file).  Fatal on any
     * syscall failure: a half-open pool is not a state the caller
     * can reason about.
     */
    MmapPool(const std::string &path, std::uint64_t bytes);
    ~MmapPool();

    MmapPool(const MmapPool &) = delete;
    MmapPool &operator=(const MmapPool &) = delete;

    std::uint64_t bytes() const { return bytes_; }
    const std::string &path() const { return path_; }

    /** Whole mapping. */
    std::span<std::uint8_t> span();
    std::span<const std::uint8_t> span() const;

    /** Sub-range view; fatal if out of bounds. */
    std::span<std::uint8_t> span(std::uint64_t off, std::uint64_t len);

    /**
     * Return [off, off+len) to hole state.  The range reads back as
     * zeros afterwards either way; disk space is only reclaimed when
     * the filesystem supports hole punching.
     */
    void punch(std::uint64_t off, std::uint64_t len);

    /** msync a sub-range (MS_SYNC): durable even across power loss. */
    void sync(std::uint64_t off, std::uint64_t len);

    /** msync the entire mapping. */
    void syncAll() { sync(0, bytes_); }

  private:
    std::string path_;
    int fd_ = -1;
    std::uint8_t *map_ = nullptr;
    std::uint64_t bytes_ = 0;
};

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_MMAP_POOL_HH
