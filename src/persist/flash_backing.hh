/**
 * @file
 * Write-through views the flash layer uses to keep its durable state
 * in the StoreFile.
 *
 * FlashMetaView mirrors FlashArray's per-segment bookkeeping (write
 * pointer, owners, retired marks, erase cycles, spec-fail latch) into
 * the segment-metadata region.  Every mutator first runs the caller's
 * barrier — the MetaJournal flush — so the journal is always at least
 * as new as the flash metadata: a crash can leave flash metadata
 * *behind* the journal (recovery's stale-duplicate sweep repairs
 * that) but never ahead of it.
 *
 * BankBacking gives one bank's BankPageStore a durable home for its
 * erase-block buffers: cell bytes live directly in the mapped data
 * region, the per-block materialized map says whether a block's range
 * holds cells or a hole.  Ordering contract (docs/PERSISTENCE.md):
 * materialize fills the range with 0xFF *before* setting the map
 * byte; release clears the map byte *before* punching the hole, so
 * the map never advertises a block whose bytes are not erased-valid.
 */

#ifndef ENVY_PERSIST_FLASH_BACKING_HH
#define ENVY_PERSIST_FLASH_BACKING_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hh"
#include "persist/store_file.hh"

namespace envy {
namespace persist {

class MetaJournal;

class FlashMetaView
{
  public:
    using Barrier = std::function<void()>;

    FlashMetaView(StoreFile &file, Barrier barrier)
        : file_(file), barrier_(std::move(barrier))
    {
    }

    // ---- reads (restore path) -------------------------------------

    std::uint32_t writePtr(SegmentId seg) const;
    std::uint64_t eraseCycles(SegmentId seg) const;
    bool specFailed(SegmentId seg) const;
    /** Decoded owner word (the file stores ~owner). */
    std::uint32_t owner(SegmentId seg, SlotId slot) const;
    bool retired(SegmentId seg, SlotId slot) const;

    // ---- write-through (journal barrier first) --------------------

    void setWritePtr(SegmentId seg, std::uint32_t ptr);
    void setEraseCycles(SegmentId seg, std::uint64_t cycles);
    void setSpecFailed(SegmentId seg);
    void setOwner(SegmentId seg, SlotId slot, std::uint32_t owner);
    void setRetired(SegmentId seg, SlotId slot);

    /**
     * Segment erased: owners back to all-dead (all-zeros encoded),
     * write pointer to 0, cycle count updated.  Retired marks are
     * physical damage and stay.
     */
    void resetAfterErase(SegmentId seg, std::uint64_t cycles);

  private:
    std::span<std::uint8_t> meta(SegmentId seg) const;
    void barrier() const
    {
        if (barrier_)
            barrier_();
    }

    StoreFile &file_;
    Barrier barrier_;
};

class BankBacking
{
  public:
    BankBacking(StoreFile &file, std::uint32_t bank)
        : file_(file), bank_(bank)
    {
    }

    bool materialized(std::uint32_t block) const
    {
        return file_.blockMaterialized(bank_, block);
    }

    std::uint64_t materializedCount() const
    {
        return file_.materializedCount(bank_);
    }

    std::span<std::uint8_t> blockData(std::uint32_t block)
    {
        return file_.blockData(bank_, block);
    }

    /** Fill with 0xFF first, then flip the map byte. */
    void materialize(std::uint32_t block);

    /** Clear the map byte first, then punch the data hole. */
    void release(std::uint32_t block);

  private:
    StoreFile &file_;
    std::uint32_t bank_;
};

/** Everything FlashArray needs to persist itself. */
struct FlashPersist
{
    /** @p journal may be null (tests of the views alone). */
    FlashPersist(StoreFile &file, MetaJournal *journal);

    FlashMetaView meta;
    std::vector<BankBacking> banks; //!< empty in metadata-only mode

    BankBacking *bankBacking(std::uint32_t bank)
    {
        return banks.empty() ? nullptr : &banks[bank];
    }
};

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_FLASH_BACKING_HH
