/**
 * @file
 * PersistBackend: glue between an EnvyStore and the persistence
 * subsystem (docs/PERSISTENCE.md).
 *
 * Owns the StoreFile (superblock + segment metadata + cell data), the
 * MetaJournal (write-ahead log of the battery-backed SRAM image) and
 * the FlashPersist views the FlashArray writes through.  EnvyStore
 * builds one when EnvyConfig::persistPath is set and calls, in order:
 *
 *     ctor            classify/open the file, replay the journal
 *     flashPersist()  handed to FlashArray's constructor
 *     restoreSram()   (reopen) replayed image into the SramArray
 *     activate()      dirty tracking on, journal armed
 *     finishFresh()   (fresh) initial checkpoint + superblock valid
 *     finishReopen()  (reopen) record recovery report, compact journal
 *     opEnd()         after every host op: flush + auto-checkpoint
 *     commit()        power-loss barrier: fdatasync + msync everything
 *     shutdown()      orderly close: checkpoint, sync, disarm
 */

#ifndef ENVY_PERSIST_BACKEND_HH
#define ENVY_PERSIST_BACKEND_HH

#include <cstdint>
#include <string>

#include "common/thread_annotations.hh"
#include "envy/recovery.hh"
#include "obs/metrics.hh"
#include "persist/flash_backing.hh"
#include "persist/meta_journal.hh"
#include "persist/store_file.hh"

namespace envy {

struct EnvyConfig;
class SramArray;

namespace persist {

/** What opening a persistent store did (EnvyStore::persistReport). */
struct PersistReport
{
    bool created = false; //!< fresh store (no prior state on disk)
    std::uint64_t journalRecordsReplayed = 0;
    std::uint64_t journalBytesTruncated = 0; //!< torn tail dropped
    RecoveryReport recovery{}; //!< reopen only: crash-repair actions
};

/** Freeze the config (with derived values resolved) for the superblock. */
StoreParams paramsFor(const EnvyConfig &cfg, std::uint64_t sram_bytes);

/** Rebuild the config a store file was created with. */
EnvyConfig configFor(const StoreParams &p, const std::string &path);

class PersistBackend
{
  public:
    PersistBackend(const EnvyConfig &cfg, std::uint64_t sram_bytes,
                   obs::MetricsRegistry *metrics);

    /** True when an existing valid store was opened (restart). */
    bool reopening() const { return file_.reopened(); }

    FlashPersist *flashPersist() { return &flashPersist_; }
    StoreFile &file() { return file_; }
    MetaJournal &journal() { return journal_; }
    PersistReport &report() { return report_; }
    const PersistReport &report() const { return report_; }

    /** (Reopen) overlay the journal-replayed image onto the SRAM. */
    void restoreSram(SramArray &sram);

    /** Arm the journal against @p sram and start dirty tracking. */
    void activate(SramArray &sram);

    /** (Fresh) initial checkpoint, then flip the valid flag: only now
     *  is the file recognisable as a complete store. */
    void finishFresh();

    /** (Reopen) record what recovery did and compact the journal. */
    void finishReopen(const RecoveryReport &recovery);

    /** Per-operation durability: flush dirty SRAM, auto-checkpoint. */
    void opEnd();

    /**
     * opEnd() plus the journal log force (fdatasync): the appended
     * records survive power loss.  Flash-resident pages the journal
     * no longer covers still ride the checkpoint/commit schedule —
     * the full barrier is commit().
     */
    void opEndSync();

    /** Power-loss barrier: journal fdatasync + store-file msync. */
    void commit();

    // ---- group-commit epoch pieces (CommitPipeline) ---------------

    /** Journal the dirty SRAM batch.  The pipeline calls this under
     *  Controller::quiesce so the capture is a consistent cut. */
    void epochFlush();

    /** Journal fdatasync only (syncWait's log force), *outside* the
     *  quiesce.  One device barrier shared by the whole epoch. */
    void epochSyncJournal();

    /** fdatasync + store-file msync, *outside* the quiesce. */
    void epochSync();

    /** Compact the journal to @p image (a quiesced SRAM copy) —
     *  the concurrent twin of the serial auto-checkpoint. */
    void checkpointWithImage(std::span<const std::uint8_t> image);

    /** Orderly close (EnvyStore dtor): checkpoint, sync, disarm. */
    void shutdown();

  private:
    void checkpointNow();
    void traceCheckpoint();

    StoreFile file_;
    MetaJournal journal_;
    FlashPersist flashPersist_;
    PersistReport report_;

    // Guards the staged journal-replay image.  The backend itself
    // holds no lock around journal appends or syncs: sequencing of
    // the journal *file* lives inside MetaJournal's journalMu_ (a
    // leaf lock below the controller's structMu_ in the system lock
    // order — see docs/INTERNALS.md), so serial stores, the commit
    // pipeline, and the flash write-through barrier all append
    // through the same ordered path.
    mutable Mutex mu_;
    std::vector<std::uint8_t> replayedSram_ ENVY_GUARDED_BY(mu_);
};

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_BACKEND_HH
