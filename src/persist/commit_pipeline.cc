#include "persist/commit_pipeline.hh"

#include <chrono>
#include <span>
#include <vector>

#include "envy/controller.hh"
#include "obs/trace.hh"
#include "persist/backend.hh"
#include "sram/sram_array.hh"

namespace envy {
namespace persist {

namespace {

std::vector<std::uint64_t>
batchEdges()
{
    return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

std::vector<std::uint64_t>
epochUsEdges()
{
    return {50,    100,   200,    500,    1'000,
            2'000, 5'000, 10'000, 20'000, 50'000};
}

} // namespace

CommitPipeline::CommitPipeline(Controller &ctl, PersistBackend &backend,
                               SramArray &sram,
                               obs::MetricsRegistry *metrics)
    : ctl_(ctl),
      backend_(backend),
      sram_(sram),
      metEpochs_(obs::counterOf(metrics, "persist.group_commit.epochs",
                                "epochs",
                                "group-commit epochs completed")),
      metBatch_(obs::histogramOf(metrics, "persist.group_commit.batch",
                                 "callers",
                                 "persistFlush/persistCommit callers "
                                 "coalesced per epoch",
                                 batchEdges())),
      metEpochUs_(obs::histogramOf(metrics,
                                   "persist.group_commit.epoch_us",
                                   "us",
                                   "wall time per group-commit epoch",
                                   epochUsEdges()))
{
}

CommitPipeline::~CommitPipeline()
{
    stop();
}

void
CommitPipeline::start()
{
    if (thread_.joinable())
        return;
    {
        MutexLock lock(mu_);
        stop_ = false;
    }
    thread_ = std::thread([this] { run(); });
}

void
CommitPipeline::stop()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
        workCv_.notify_all();
        doneCv_.notify_all();
    }
    if (thread_.joinable())
        thread_.join();
}

bool
CommitPipeline::running() const
{
    return thread_.joinable();
}

void
CommitPipeline::flushWait()
{
    MutexLock lock(mu_);
    // Any epoch that *starts* after this point captures our marks;
    // epoch epochSeq_ may already be mid-capture, so wait out one
    // more.
    const std::uint64_t my = epochSeq_;
    pendingFlush_ = true;
    ++batchPending_;
    workCv_.notify_one();
    while (flushDone_ <= my && !stop_)
        doneCv_.wait(lock);
}

void
CommitPipeline::syncWait()
{
    MutexLock lock(mu_);
    const std::uint64_t my = epochSeq_;
    pendingJournalSync_ = true;
    ++batchPending_;
    workCv_.notify_one();
    while (journalSyncDone_ <= my && !stop_)
        doneCv_.wait(lock);
}

void
CommitPipeline::commitWait()
{
    MutexLock lock(mu_);
    const std::uint64_t my = epochSeq_;
    pendingSync_ = true;
    ++batchPending_;
    workCv_.notify_one();
    while (syncDone_ <= my && !stop_)
        doneCv_.wait(lock);
}

void
CommitPipeline::run()
{
    for (;;) {
        bool wantJournalSync, wantSync;
        std::uint64_t epoch, batch;
        {
            MutexLock lock(mu_);
            while (!stop_ && !pendingFlush_ && !pendingJournalSync_ &&
                   !pendingSync_)
                workCv_.wait(lock);
            if (stop_ && !pendingFlush_ && !pendingJournalSync_ &&
                !pendingSync_)
                return; // drained: a stop never drops a request
            wantSync = pendingSync_;
            // The full barrier subsumes the log force.
            wantJournalSync = pendingJournalSync_ || wantSync;
            pendingFlush_ = false;
            pendingJournalSync_ = false;
            pendingSync_ = false;
            batch = batchPending_;
            batchPending_ = 0;
            epoch = ++epochSeq_;
        }

        const auto t0 = std::chrono::steady_clock::now();

        // Capture under the quiesce: every mutator (flush, clean,
        // COW, and SRAM-hit writes in persistent-concurrent mode)
        // holds the structural lock, so the drained ranges are a
        // consistent cut.  The journal write(2) itself happens here
        // too — it is what makes flushWait() SIGKILL-durable.
        ctl_.quiesce([this] { backend_.epochFlush(); });

        // The expensive barriers run with the store unlocked.
        if (wantSync)
            backend_.epochSync();
        else if (wantJournalSync)
            backend_.epochSyncJournal();

        if (backend_.journal().needsCheckpoint()) {
            // Copy the image under a short quiesce (dropping dirty
            // marks the image covers), compact outside it.
            std::vector<std::uint8_t> image;
            ctl_.quiesce([this, &image] {
                sram_.drainDirty(
                    [](std::uint64_t, std::span<const std::uint8_t>) {
                    });
                const auto raw = sram_.raw();
                image.assign(raw.begin(), raw.end());
            });
            backend_.checkpointWithImage(image);
        }

        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        metEpochs_.add();
        metBatch_.record(batch);
        metEpochUs_.record(static_cast<std::uint64_t>(us));
        ENVY_TRACE("persist.group_commit", obs::tv("epoch", epoch),
                   obs::tv("batch", batch),
                   obs::tv("log_forced", wantJournalSync),
                   obs::tv("synced", wantSync),
                   obs::tv("us", static_cast<std::uint64_t>(us)));

        {
            MutexLock lock(mu_);
            flushDone_ = epoch;
            if (wantJournalSync)
                journalSyncDone_ = epoch;
            if (wantSync)
                syncDone_ = epoch;
            doneCv_.notify_all();
        }
    }
}

} // namespace persist
} // namespace envy
