/**
 * @file
 * PersistentStore: open an existing persistent eNVy store by path.
 *
 * `EnvyStore store(cfg)` with cfg.persistPath set handles both the
 * first creation and an explicit-config reopen.  This helper covers
 * the restart case where only the path is known: the configuration is
 * read back from the store file's superblock, so a tool (or the crash
 * harness's verifying parent) can recover a store without knowing how
 * it was created.
 */

#ifndef ENVY_PERSIST_PERSISTENT_STORE_HH
#define ENVY_PERSIST_PERSISTENT_STORE_HH

#include <memory>
#include <string>

namespace envy {

class EnvyStore;

namespace persist {

class PersistentStore
{
  public:
    /**
     * Reopen the store at @p path, deriving the EnvyConfig from its
     * superblock and running restart recovery.  Fatal if the path
     * does not hold a valid store.
     */
    static std::unique_ptr<EnvyStore> open(const std::string &path);

    /** As open(), but reports failure instead of aborting. */
    static std::unique_ptr<EnvyStore> tryOpen(const std::string &path,
                                              std::string &error);
};

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_PERSISTENT_STORE_HH
