/**
 * @file
 * MetaJournal: write-ahead journal for the battery-backed SRAM image
 * (page table, write-buffer map, segment-space records, wear/clean
 * records — everything EnvyStore keeps in its SramArray).
 *
 * The journal file is `<store>.journal`:
 *
 *     magic "ENVYJRN1" (8) | reserved u64 (8) | records...
 *
 * and each record is
 *
 *     len u32 | type u8 | seq u64 | payload[len] | crc u32
 *
 * little-endian throughout, crc = CRC-32 (zlib polynomial) over
 * everything before it (len..payload).  Types: 1 = Checkpoint (the
 * full SRAM image), 2 = SramWrite (u64 address + changed bytes),
 * 3 = Group (a whole flush batch in one record: repeated
 * {addr u64 | n u32 | bytes[n]} sub-ranges under a single CRC, so a
 * tear anywhere inside the frame drops the *entire* batch on replay —
 * the group-commit atomicity unit).  Sequence numbers are strictly
 * consecutive; the first record of a journal file is always a
 * Checkpoint.
 *
 * Commit protocol (docs/PERSISTENCE.md):
 *
 *  - flush()      appends the current dirty SRAM ranges as records
 *                 with a plain write(2).  A completed write survives
 *                 SIGKILL, so flushing at every acknowledge point is
 *                 what the crash harness leans on.
 *  - commit()     flush + fdatasync: the power-loss barrier.  Callers
 *                 invoke it *before* making flash metadata durable so
 *                 the journal is always at least as new as the flash
 *                 metadata it describes.
 *  - checkpoint() rewrites the journal as one Checkpoint record via
 *                 write-to-temp + fdatasync + rename, bounding replay
 *                 time and file size.
 *
 * replay() walks the record stream, stops at the first torn or
 * corrupt record (bad length, bad CRC, out-of-order sequence), and
 * truncates that tail away — a half-appended record from a crash is
 * expected, never fatal.
 *
 * Concurrency: every file mutation (append, sync, checkpoint swap)
 * is serialized under the internal `journalMu_`, which sits *below*
 * the controller's structural lock in the system lock order
 * (docs/INTERNALS.md): flush() runs with the controller quiesced and
 * therefore acquires journalMu_ under structMu_, while syncOnly()
 * takes journalMu_ alone so the fdatasync of a group-commit epoch
 * never blocks the data path.  journalMu_ deliberately covers the
 * write(2)/fdatasync syscalls — it is a leaf lock that only other
 * journal appenders can contend on (envy_analyze knows journal leaf
 * locks are exempt from rule lock-discipline).
 */

#ifndef ENVY_PERSIST_META_JOURNAL_HH
#define ENVY_PERSIST_META_JOURNAL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "obs/metrics.hh"

namespace envy {
namespace persist {

class MetaJournal
{
  public:
    static constexpr char magic[9] = "ENVYJRN1"; //!< 8 bytes on disk
    static constexpr std::uint64_t headerBytes = 16;
    static constexpr std::uint8_t recCheckpoint = 1;
    static constexpr std::uint8_t recSramWrite = 2;
    static constexpr std::uint8_t recGroup = 3;
    /** len(4) + type(1) + seq(8) + crc(4) around the payload. */
    static constexpr std::uint64_t recordOverhead = 17;
    /** addr(8) + n(4) before each Group sub-range's bytes. */
    static constexpr std::uint64_t groupRangeOverhead = 12;

    /** Receives one dirty range; bytes are copied before returning. */
    using Emit =
        std::function<void(std::uint64_t addr,
                           std::span<const std::uint8_t> bytes)>;
    /** Drains every dirty SRAM range into the provided Emit. */
    using DrainFn = std::function<void(const Emit &)>;
    /** Full current SRAM image (checkpoint payload). */
    using SnapshotFn = std::function<std::span<const std::uint8_t>()>;

    MetaJournal(std::string path, std::uint64_t sram_bytes,
                obs::MetricsRegistry *metrics = nullptr);
    ~MetaJournal();

    MetaJournal(const MetaJournal &) = delete;
    MetaJournal &operator=(const MetaJournal &) = delete;

    const std::string &path() const { return path_; }

    /** Create/truncate the journal to an empty record stream. */
    void createFresh();

    struct ReplayResult
    {
        bool ok = false;
        std::string error;          //!< set when !ok
        std::vector<std::uint8_t> sram; //!< reconstructed SRAM image
        std::uint64_t records = 0;  //!< valid records applied
        std::uint64_t truncatedBytes = 0; //!< torn tail dropped
    };

    /**
     * Parse an existing journal, reconstruct the SRAM image, truncate
     * any torn tail, and leave the journal open for appending.
     */
    ReplayResult replay();

    /**
     * Arm the journal: @p drain supplies dirty ranges for flush(),
     * @p snapshot the full image for checkpoint().  Until activation
     * (and after deactivate()) flush/commit/checkpoint are no-ops,
     * which lets restore code rebuild state without journaling it.
     */
    void activate(DrainFn drain, SnapshotFn snapshot);
    void deactivate();
    bool active() const { return active_; }

    void flush();
    void commit();
    void checkpoint();

    /**
     * fdatasync the journal file without draining anything — the
     * power-loss barrier for ranges a previous flush() already
     * appended.  The commit pipeline calls this *outside* the
     * controller quiesce so the sync does not stall the data path.
     */
    void syncOnly();

    /**
     * Compact the journal to one Checkpoint record holding @p image
     * (a copy of the SRAM the caller captured while the store was
     * quiesced).  Unlike checkpoint(), does not call the drain or
     * snapshot hooks, so it is safe to run while workers mutate SRAM
     * — their marks land in ranges a later flush picks up.
     */
    void checkpointFromImage(std::span<const std::uint8_t> image);

    /**
     * Group-commit mode: flush() emits the whole dirty batch as one
     * Group record (single CRC — replay drops a torn batch whole)
     * instead of one SramWrite per range.  Serial stores leave this
     * off, keeping their journal bytes identical to prior releases.
     */
    void setGroupCommit(bool on) { groupCommit_ = on; }
    bool groupCommit() const { return groupCommit_; }

    /** Journal bytes appended since the last checkpoint. */
    std::uint64_t bytesSinceCheckpoint() const
    {
        return bytesSinceCheckpoint_.load(std::memory_order_relaxed);
    }

    /** Auto-checkpoint once bytesSinceCheckpoint() crosses this. */
    void setCheckpointThreshold(std::uint64_t bytes)
    {
        checkpointThreshold_ = bytes;
    }
    bool needsCheckpoint() const
    {
        return bytesSinceCheckpoint() >= checkpointThreshold_;
    }

  private:
    std::string tmpPath() const { return path_ + ".tmp"; }
    void openForAppend(std::uint64_t end_off)
        ENVY_REQUIRES(journalMu_);
    void appendRecord(std::vector<std::uint8_t> &out,
                      std::uint8_t type,
                      std::span<const std::uint8_t> payload)
        ENVY_REQUIRES(journalMu_);
    void syncDirectoryOf(const std::string &path);

    std::string path_;
    std::uint64_t sramBytes_;
    //! Leaf lock over the journal file state; below structMu_ in the
    //! system lock order, never held while calling out.
    mutable Mutex journalMu_;
    int fd_ ENVY_GUARDED_BY(journalMu_) = -1;
    std::uint64_t endOff_ ENVY_GUARDED_BY(journalMu_) = 0;
    //! Reused flush() serialization buffer: barriers flush once per
    //! flash-meta write, so the hot path must not allocate.
    std::vector<std::uint8_t> flushBuf_ ENVY_GUARDED_BY(journalMu_);
    //! Sequence of the next record written.
    std::uint64_t seq_ ENVY_GUARDED_BY(journalMu_) = 1;
    bool active_ = false;
    bool groupCommit_ = false;
    DrainFn drain_;
    SnapshotFn snapshot_;
    std::atomic<std::uint64_t> bytesSinceCheckpoint_{0};
    std::uint64_t checkpointThreshold_ = ~std::uint64_t(0);

    obs::Counter metRecords_;
    obs::Counter metBytes_;
    obs::Counter metFlushes_;
    obs::Counter metCommits_;
    obs::Counter metCheckpoints_;
};

} // namespace persist
} // namespace envy

#endif // ENVY_PERSIST_META_JOURNAL_HH
