#include "persist/persistent_store.hh"

#include "common/logging.hh"
#include "envy/envy_store.hh"
#include "persist/backend.hh"
#include "persist/store_file.hh"

namespace envy {
namespace persist {

std::unique_ptr<EnvyStore>
PersistentStore::tryOpen(const std::string &path, std::string &error)
{
    StoreParams params;
    if (!StoreFile::readParams(path, params, error))
        return nullptr;
    return std::make_unique<EnvyStore>(configFor(params, path));
}

std::unique_ptr<EnvyStore>
PersistentStore::open(const std::string &path)
{
    std::string error;
    std::unique_ptr<EnvyStore> store = tryOpen(path, error);
    if (!store)
        ENVY_FATAL("persist: ", error);
    return store;
}

} // namespace persist
} // namespace envy
