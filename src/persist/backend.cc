#include "persist/backend.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "envy/envy_store.hh"
#include "obs/trace.hh"
#include "sram/sram_array.hh"

namespace envy {
namespace persist {

StoreParams
paramsFor(const EnvyConfig &cfg, std::uint64_t sram_bytes)
{
    // Derived knobs (logical pages, buffer size) are frozen to their
    // effective values: a later change to targetUtilization must not
    // make an existing store unreadable, only an actual geometry
    // change should.
    StoreParams p;
    p.pageSize = cfg.geom.pageSize;
    p.blockBytes = cfg.geom.blockBytes;
    p.blocksPerChip = cfg.geom.blocksPerChip;
    p.numBanks = cfg.geom.numBanks;
    p.logicalPages = cfg.geom.effectiveLogicalPages().value();
    p.writeBufferPages = cfg.geom.effectiveWriteBufferPages().value();
    p.storeData = cfg.storeData ? 1 : 0;
    p.policy = static_cast<std::uint64_t>(cfg.policy);
    p.partitionSize = cfg.partitionSize;
    p.bufferThreshold = cfg.bufferThreshold;
    p.wearThreshold = cfg.wearThreshold;
    p.tlbSize = cfg.tlbSize;
    p.autoDrain = cfg.autoDrain ? 1 : 0;
    p.sramBytes = sram_bytes;
    return p;
}

EnvyConfig
configFor(const StoreParams &p, const std::string &path)
{
    EnvyConfig cfg;
    cfg.geom.pageSize = static_cast<std::uint32_t>(p.pageSize);
    cfg.geom.blockBytes = static_cast<std::uint32_t>(p.blockBytes);
    cfg.geom.blocksPerChip =
        static_cast<std::uint32_t>(p.blocksPerChip);
    cfg.geom.numBanks = static_cast<std::uint32_t>(p.numBanks);
    cfg.geom.logicalPages = p.logicalPages;
    cfg.geom.writeBufferPages =
        static_cast<std::uint32_t>(p.writeBufferPages);
    cfg.storeData = p.storeData != 0;
    cfg.policy = static_cast<PolicyKind>(p.policy);
    cfg.partitionSize = static_cast<std::uint32_t>(p.partitionSize);
    cfg.bufferThreshold =
        static_cast<std::uint32_t>(p.bufferThreshold);
    cfg.wearThreshold = p.wearThreshold;
    cfg.tlbSize = static_cast<std::uint32_t>(p.tlbSize);
    cfg.autoDrain = p.autoDrain != 0;
    cfg.prePopulate = false; // reopen: state comes from the file
    cfg.persistPath = path;
    return cfg;
}

PersistBackend::PersistBackend(const EnvyConfig &cfg,
                               std::uint64_t sram_bytes,
                               obs::MetricsRegistry *metrics)
    : file_(cfg.persistPath, paramsFor(cfg, sram_bytes)),
      journal_(cfg.persistPath + ".journal", sram_bytes, metrics),
      flashPersist_(file_, &journal_)
{
    if (file_.reopened()) {
        MetaJournal::ReplayResult r = journal_.replay();
        if (!r.ok)
            ENVY_FATAL("persist: store '", cfg.persistPath,
                       "' is valid but its journal is not: ", r.error);
        report_.journalRecordsReplayed = r.records;
        report_.journalBytesTruncated = r.truncatedBytes;
        replayedSram_ = std::move(r.sram);
    } else {
        report_.created = true;
        journal_.createFresh();
    }
    journal_.setCheckpointThreshold(
        cfg.persistCheckpointBytes
            ? cfg.persistCheckpointBytes
            : std::max<std::uint64_t>(256 * 1024, 4 * sram_bytes));
}

void
PersistBackend::restoreSram(SramArray &sram)
{
    MutexLock lock(mu_);
    ENVY_ASSERT(reopening() && replayedSram_.size() == sram.size(),
                "persist: no replayed SRAM image to restore");
    sram.write(0, replayedSram_);
    std::vector<std::uint8_t>().swap(replayedSram_);
}

void
PersistBackend::activate(SramArray &sram)
{
    SramArray *s = &sram;
    sram.enableDirtyTracking();
    journal_.activate(
        [s](const MetaJournal::Emit &emit) { s->drainDirty(emit); },
        [s] { return std::span<const std::uint8_t>(s->raw()); });
}

void
PersistBackend::traceCheckpoint()
{
    ENVY_TRACE("persist.checkpoint",
               obs::tv("journal_bytes", journal_.bytesSinceCheckpoint()));
}

void
PersistBackend::checkpointNow()
{
    journal_.checkpoint();
    traceCheckpoint();
}

void
PersistBackend::epochFlush()
{
    journal_.flush();
}

void
PersistBackend::epochSyncJournal()
{
    journal_.syncOnly();
}

void
PersistBackend::epochSync()
{
    journal_.syncOnly();
    file_.syncAll();
}

void
PersistBackend::checkpointWithImage(std::span<const std::uint8_t> image)
{
    journal_.checkpointFromImage(image);
    traceCheckpoint();
}

void
PersistBackend::finishFresh()
{
    checkpointNow();
    // Only now is the file a complete store: a crash anywhere before
    // this leaves the valid flag clear and the next open starts over.
    file_.markValid();
}

void
PersistBackend::finishReopen(const RecoveryReport &recovery)
{
    report_.recovery = recovery;
    ENVY_TRACE("persist.reopen",
               obs::tv("journal_records",
                       report_.journalRecordsReplayed),
               obs::tv("torn_bytes", report_.journalBytesTruncated),
               obs::tv("stale_reclaimed",
                       recovery.staleFlashReclaimed));
    // Compact: replaying the old journal again on the next open would
    // be wasted work, and recovery itself dirtied SRAM.
    checkpointNow();
}

void
PersistBackend::opEnd()
{
    journal_.flush();
    if (journal_.needsCheckpoint())
        checkpointNow();
}

void
PersistBackend::opEndSync()
{
    journal_.commit();
    if (journal_.needsCheckpoint())
        checkpointNow();
}

void
PersistBackend::commit()
{
    journal_.commit();
    file_.syncAll();
}

void
PersistBackend::shutdown()
{
    if (journal_.active()) {
        checkpointNow();
        journal_.deactivate();
    }
    file_.syncAll();
}

} // namespace persist
} // namespace envy
