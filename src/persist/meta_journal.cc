#include "persist/meta_journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "faults/crash_point.hh"
#include "persist/checksum.hh"

namespace envy {
namespace persist {

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(p[i]) << (8 * i);
    return v;
}

void
writeFully(int fd, const std::uint8_t *buf, std::uint64_t len,
           std::uint64_t off, const std::string &path)
{
    while (len > 0) {
        const ssize_t n = ::pwrite(fd, buf, len,
                                   static_cast<off_t>(off));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ENVY_FATAL("persist: write '", path,
                       "': ", std::strerror(errno));
        }
        buf += n;
        len -= static_cast<std::uint64_t>(n);
        off += static_cast<std::uint64_t>(n);
    }
}

} // namespace

MetaJournal::MetaJournal(std::string path, std::uint64_t sram_bytes,
                         obs::MetricsRegistry *metrics)
    : path_(std::move(path)), sramBytes_(sram_bytes)
{
    metRecords_ = obs::counterOf(metrics, "persist.journal_records",
                                 "records",
                                 "journal records appended");
    metBytes_ = obs::counterOf(metrics, "persist.journal_bytes",
                               "bytes", "journal bytes appended");
    metFlushes_ = obs::counterOf(metrics, "persist.journal_flushes",
                                 "flushes",
                                 "journal flush batches");
    metCommits_ = obs::counterOf(metrics, "persist.commits", "commits",
                                 "journal fdatasync commits");
    metCheckpoints_ = obs::counterOf(metrics, "persist.checkpoints",
                                     "checkpoints",
                                     "journal compactions");
}

MetaJournal::~MetaJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
MetaJournal::openForAppend(std::uint64_t end_off)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fd_ < 0)
        ENVY_FATAL("persist: cannot open journal '", path_,
                   "': ", std::strerror(errno));
    endOff_ = end_off;
}

void
MetaJournal::createFresh()
{
    std::remove(tmpPath().c_str()); // stale temp from a dead process
    MutexLock lock(journalMu_);
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = ::open(path_.c_str(),
                 O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0)
        ENVY_FATAL("persist: cannot create journal '", path_,
                   "': ", std::strerror(errno));
    std::vector<std::uint8_t> header;
    header.insert(header.end(), magic, magic + 8);
    putU64(header, 0); // reserved
    writeFully(fd_, header.data(), header.size(), 0, path_);
    endOff_ = headerBytes;
    seq_ = 1;
    bytesSinceCheckpoint_.store(0, std::memory_order_relaxed);
}

MetaJournal::ReplayResult
MetaJournal::replay()
{
    std::remove(tmpPath().c_str()); // checkpoint died before rename
    ReplayResult res;

    const int fd = ::open(path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) {
        res.error = "cannot open journal '" + path_ + "': " +
                    std::strerror(errno);
        return res;
    }
    std::vector<std::uint8_t> file;
    {
        std::uint8_t buf[1 << 16];
        std::uint64_t off = 0;
        for (;;) {
            const ssize_t n =
                ::pread(fd, buf, sizeof(buf),
                        static_cast<off_t>(off));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ::close(fd);
                res.error = "cannot read journal '" + path_ + "': " +
                            std::strerror(errno);
                return res;
            }
            if (n == 0)
                break;
            file.insert(file.end(), buf, buf + n);
            off += static_cast<std::uint64_t>(n);
        }
    }

    if (file.size() < headerBytes ||
        std::memcmp(file.data(), magic, 8) != 0) {
        ::close(fd);
        res.error = "'" + path_ + "' is not an eNVy journal";
        return res;
    }

    res.sram.assign(sramBytes_, 0);
    std::uint64_t off = headerBytes;
    std::uint64_t prevSeq = 0;
    bool sawCheckpoint = false;
    while (off < file.size()) {
        // A record that does not parse is the torn tail: stop, keep
        // everything before it.
        if (file.size() - off < recordOverhead)
            break;
        const std::uint8_t *rec = file.data() + off;
        const std::uint32_t len = getU32(rec);
        // Worst-case Group payload: every granule dirty with one
        // range header per granule — still under 2x the image plus
        // slack, so anything larger is garbage, not a record.
        if (len > 2 * sramBytes_ + 32 ||
            recordOverhead + len > file.size() - off)
            break;
        const std::uint8_t type = rec[4];
        const std::uint64_t seq = getU64(rec + 5);
        const std::uint32_t want = getU32(rec + 13 + len);
        if (crc32({rec, 13 + len}) != want)
            break;
        if (prevSeq != 0 && seq != prevSeq + 1)
            break;
        const std::uint8_t *payload = rec + 13;
        if (type == recCheckpoint) {
            if (len != sramBytes_)
                break;
            std::memcpy(res.sram.data(), payload, len);
            sawCheckpoint = true;
        } else if (type == recSramWrite) {
            if (!sawCheckpoint || len < 8)
                break;
            const std::uint64_t addr = getU64(payload);
            const std::uint64_t n = len - 8;
            if (addr > sramBytes_ || n > sramBytes_ - addr)
                break;
            std::memcpy(res.sram.data() + addr, payload + 8, n);
        } else if (type == recGroup) {
            // A group frame is atomic: validate every sub-range
            // before applying any, so a malformed frame (impossible
            // without CRC collision, but cheap to check) drops whole.
            if (!sawCheckpoint || len == 0)
                break;
            std::uint64_t p = 0;
            bool good = true;
            while (p < len) {
                if (len - p < groupRangeOverhead) {
                    good = false;
                    break;
                }
                const std::uint64_t addr = getU64(payload + p);
                const std::uint32_t n = getU32(payload + p + 8);
                p += groupRangeOverhead;
                if (n > len - p || addr > sramBytes_ ||
                    n > sramBytes_ - addr) {
                    good = false;
                    break;
                }
                p += n;
            }
            if (!good || p != len)
                break;
            p = 0;
            while (p < len) {
                const std::uint64_t addr = getU64(payload + p);
                const std::uint32_t n = getU32(payload + p + 8);
                p += groupRangeOverhead;
                std::memcpy(res.sram.data() + addr, payload + p, n);
                p += n;
            }
        } else {
            break;
        }
        prevSeq = seq;
        off += recordOverhead + len;
        ++res.records;
    }

    if (!sawCheckpoint) {
        ::close(fd);
        res.error = "journal '" + path_ +
                    "' holds no valid checkpoint record";
        return res;
    }

    res.truncatedBytes = file.size() - off;
    if (res.truncatedBytes > 0 &&
        ::ftruncate(fd, static_cast<off_t>(off)) != 0) {
        ::close(fd);
        res.error = std::string("cannot truncate torn journal tail: ") +
                    std::strerror(errno);
        return res;
    }

    MutexLock lock(journalMu_);
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
    endOff_ = off;
    seq_ = prevSeq + 1;
    bytesSinceCheckpoint_.store(off - headerBytes,
                                std::memory_order_relaxed);
    res.ok = true;
    return res;
}

void
MetaJournal::activate(DrainFn drain, SnapshotFn snapshot)
{
    ENVY_ASSERT(fd_ >= 0, "journal not created/replayed");
    drain_ = std::move(drain);
    snapshot_ = std::move(snapshot);
    active_ = true;
}

void
MetaJournal::deactivate()
{
    active_ = false;
}

void
MetaJournal::appendRecord(std::vector<std::uint8_t> &out,
                          std::uint8_t type,
                          std::span<const std::uint8_t> payload)
{
    const std::size_t start = out.size();
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.push_back(type);
    putU64(out, seq_++);
    out.insert(out.end(), payload.begin(), payload.end());
    putU32(out, crc32({out.data() + start, out.size() - start}));
    metRecords_.add();
}

namespace {

/**
 * Finish a record whose 13-byte header was reserved at @p start and
 * whose payload has been appended in place: patch the header, append
 * the CRC.  A free function so the drain lambdas on the flush hot
 * path can seal without touching journalMu_-guarded state.
 */
void
sealRecord(std::vector<std::uint8_t> &out, std::size_t start,
           std::uint8_t type, std::uint64_t seq)
{
    const std::uint32_t len = static_cast<std::uint32_t>(
        out.size() - start - (MetaJournal::recordOverhead - 4));
    std::uint8_t *h = out.data() + start;
    for (int i = 0; i < 4; ++i)
        h[i] = static_cast<std::uint8_t>(len >> (8 * i));
    h[4] = type;
    for (int i = 0; i < 8; ++i)
        h[5 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
    putU32(out, crc32({out.data() + start, out.size() - start}));
}

} // namespace

void
MetaJournal::flush()
{
    if (!active_)
        return;
    // journalMu_ is a leaf lock: the drain callback only reads SRAM
    // (the caller already excludes mutators), and holding it across
    // the write(2) is the point — appends are sequenced here.
    //
    // Records are serialized straight into the reused buffer (header
    // space reserved, payload streamed in place, header patched and
    // CRC appended by sealRecord) — no per-range staging vectors,
    // no payload double-copy.  Flash-meta barriers call this once
    // per meta write, so the empty-drain case must stay near-free.
    MutexLock lock(journalMu_);
    std::vector<std::uint8_t> &out = flushBuf_;
    out.clear();
    std::uint64_t seq = seq_;
    if (groupCommit_) {
        // One Group record around the whole batch.
        out.resize(recordOverhead - 4);
        drain_([&](std::uint64_t addr,
                   std::span<const std::uint8_t> bytes) {
            putU64(out, addr);
            putU32(out, static_cast<std::uint32_t>(bytes.size()));
            out.insert(out.end(), bytes.begin(), bytes.end());
        });
        if (out.size() == recordOverhead - 4)
            return;
        sealRecord(out, 0, recGroup, seq++);
        metRecords_.add();
    } else {
        // One SramWrite record per dirty range.
        drain_([&](std::uint64_t addr,
                   std::span<const std::uint8_t> bytes) {
            const std::size_t start = out.size();
            out.resize(start + (recordOverhead - 4));
            putU64(out, addr);
            out.insert(out.end(), bytes.begin(), bytes.end());
            sealRecord(out, start, recSramWrite, seq++);
        });
        if (out.empty())
            return;
        metRecords_.add(seq - seq_);
    }
    seq_ = seq;
    writeFully(fd_, out.data(), out.size(), endOff_, path_);
    endOff_ += out.size();
    bytesSinceCheckpoint_.fetch_add(out.size(),
                                    std::memory_order_relaxed);
    metBytes_.add(out.size());
    metFlushes_.add();
    ENVY_CRASH_POINT("persist.journal.after_flush");
}

void
MetaJournal::syncOnly()
{
    if (!active_)
        return;
    MutexLock lock(journalMu_);
    if (::fdatasync(fd_) != 0)
        ENVY_FATAL("persist: fdatasync '", path_,
                   "': ", std::strerror(errno));
    metCommits_.add();
}

void
MetaJournal::commit()
{
    if (!active_)
        return;
    flush();
    syncOnly();
}

void
MetaJournal::syncDirectoryOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return; // best-effort: rename is already SIGKILL-durable
    ::fsync(fd);
    ::close(fd);
}

void
MetaJournal::checkpoint()
{
    if (!active_)
        return;

    // Pending dirty ranges are covered by the snapshot; drop them so
    // the new journal does not replay them twice.
    drain_([](std::uint64_t, std::span<const std::uint8_t>) {});

    checkpointFromImage(snapshot_());
}

void
MetaJournal::checkpointFromImage(std::span<const std::uint8_t> image)
{
    if (!active_)
        return;
    ENVY_ASSERT(image.size() == sramBytes_);

    MutexLock lock(journalMu_);
    std::vector<std::uint8_t> out;
    out.reserve(headerBytes + recordOverhead + image.size());
    out.insert(out.end(), magic, magic + 8);
    putU64(out, 0);
    appendRecord(out, recCheckpoint, image);

    const std::string tmp = tmpPath();
    const int tfd = ::open(tmp.c_str(),
                           O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                           0644);
    if (tfd < 0)
        ENVY_FATAL("persist: cannot create '", tmp,
                   "': ", std::strerror(errno));
    writeFully(tfd, out.data(), out.size(), 0, tmp);
    if (::fdatasync(tfd) != 0)
        ENVY_FATAL("persist: fdatasync '", tmp,
                   "': ", std::strerror(errno));
    ::close(tfd);

    ENVY_CRASH_POINT("persist.checkpoint.before_rename");
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        ENVY_FATAL("persist: rename '", tmp, "' -> '", path_,
                   "': ", std::strerror(errno));
    syncDirectoryOf(path_);
    ENVY_CRASH_POINT("persist.checkpoint.after_rename");

    openForAppend(out.size());
    bytesSinceCheckpoint_.store(0, std::memory_order_relaxed);
    metBytes_.add(out.size());
    metCheckpoints_.add();
}

} // namespace persist
} // namespace envy
