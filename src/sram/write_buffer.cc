#include "sram/write_buffer.hh"

#include "common/logging.hh"

namespace envy {

WriteBuffer::WriteBuffer(SramArray &sram, Addr base,
                         std::uint32_t capacity, std::uint32_t page_size,
                         bool store_data, std::uint32_t threshold,
                         StatGroup *parent, obs::MetricsRegistry *metrics)
    : StatGroup("writeBuffer", parent),
      statInserts(this, "inserts", "pages inserted by copy-on-write"),
      statFlushes(this, "flushes", "pages flushed to flash"),
      metInserts(obs::counterOf(metrics, "buf.inserts", "pages",
                                "pages inserted by copy-on-write")),
      metFlushes(obs::counterOf(metrics, "buf.flushes", "pages",
                                "pages released after flush")),
      metOccupancy(obs::gaugeOf(metrics, "buf.occupancy", "pages",
                                "resident pages; high = high-water")),
      sram_(sram),
      base_(base),
      capacity_(capacity),
      pageSize_(page_size),
      storeData_(store_data),
      threshold_(threshold ? threshold : capacity / 2),
      dataBase_(base + slotsOff + Addr(capacity) * 8)
{
    ENVY_ASSERT(capacity_ >= 2, "buffer: needs at least two slots");
    ENVY_ASSERT(threshold_ <= capacity_,
                "buffer: threshold above capacity");
    ENVY_ASSERT(base_ + bytesNeeded(capacity, page_size, store_data) <=
                    sram.size(),
                "buffer: write buffer does not fit in SRAM");
    MutexLock lock(mu_);
    // Fresh buffer: mark every slot unowned.
    for (std::uint32_t s = 0; s < capacity_; ++s) {
        sram_.writeUint(slotMetaAddr(s), noOwner, 4);
        sram_.writeUint(slotMetaAddr(s) + 4, 0, 4);
    }
    owners_.assign(capacity_, noOwner);
    origins_.assign(capacity_, 0);
    std::uint32_t table = 4;
    while (table < 2 * capacity_)
        table *= 2;
    probe_.assign(table, probeEmpty);
    probeMask_ = table - 1;
    syncHeader();
}

void
WriteBuffer::mapInsert(std::uint32_t key, std::uint32_t ring_slot)
{
    std::uint32_t i = probeHome(key);
    while (probe_[i] != probeEmpty) {
        ENVY_ASSERT(owners_[probe_[i]] != key, "buffer: page ",
                    key, " is already resident");
        i = (i + 1) & probeMask_;
    }
    probe_[i] = ring_slot;
}

void
WriteBuffer::mapErase(std::uint32_t key)
{
    std::uint32_t i = probeHome(key);
    while (probe_[i] != probeEmpty && owners_[probe_[i]] != key)
        i = (i + 1) & probeMask_;
    ENVY_ASSERT(probe_[i] != probeEmpty,
                "buffer: residency map out of lockstep");
    // Backward-shift deletion: pull later entries of the probe chain
    // into the hole so lookups never need tombstones.
    std::uint32_t hole = i;
    std::uint32_t j = (i + 1) & probeMask_;
    while (probe_[j] != probeEmpty) {
        const std::uint32_t home = probeHome(owners_[probe_[j]]);
        if (((j - home) & probeMask_) >= ((j - hole) & probeMask_)) {
            probe_[hole] = probe_[j];
            hole = j;
        }
        j = (j + 1) & probeMask_;
    }
    probe_[hole] = probeEmpty;
}

std::uint32_t
WriteBuffer::mapFind(std::uint32_t key) const
{
    std::uint32_t i = probeHome(key);
    while (probe_[i] != probeEmpty) {
        if (owners_[probe_[i]] == key)
            return probe_[i];
        i = (i + 1) & probeMask_;
    }
    return probeEmpty;
}

std::uint64_t
WriteBuffer::bytesNeeded(std::uint32_t capacity, std::uint32_t page_size,
                         bool store_data)
{
    std::uint64_t n = slotsOff + std::uint64_t(capacity) * 8;
    if (store_data)
        n += std::uint64_t(capacity) * page_size;
    return n;
}

void
WriteBuffer::syncHeader()
{
    sram_.writeUint(base_ + headOff, head_, 4);
    sram_.writeUint(base_ + countOff, count_, 4);
}

BufferSlotId
WriteBuffer::push(LogicalPageId logical, std::uint64_t origin)
{
    MutexLock lock(mu_);
    ENVY_ASSERT(count_ < capacity_,
                "buffer: push into a full write buffer");
    ENVY_ASSERT(logical.valid() && logical.value() < noOwner,
                "buffer: bad logical page");
    const std::uint32_t slot = head_;
    sram_.writeUint(slotMetaAddr(slot),
                    static_cast<std::uint32_t>(logical.value()), 4);
    sram_.writeUint(slotMetaAddr(slot) + 4,
                    static_cast<std::uint32_t>(origin), 4);
    owners_[slot] = static_cast<std::uint32_t>(logical.value());
    origins_[slot] = static_cast<std::uint32_t>(origin);
    mapInsert(owners_[slot], slot); // asserts the page was not resident
    head_ = (head_ + 1) % capacity_;
    ++count_;
    syncHeader();
    ++statInserts;
    metInserts.add();
    metOccupancy.set(count_);
    return BufferSlotId(slot);
}

WriteBuffer::TailInfo
WriteBuffer::tail() const
{
    MutexLock lock(mu_);
    ENVY_ASSERT(count_ > 0, "buffer: tail of an empty write buffer");
    const BufferSlotId slot(
        (head_ + capacity_ - count_) % capacity_);
    return TailInfo{slot, slotOwnerLocked(slot),
                    slotOriginLocked(slot)};
}

void
WriteBuffer::popTail()
{
    MutexLock lock(mu_);
    ENVY_ASSERT(count_ > 0, "buffer: pop of an empty write buffer");
    const std::uint32_t slot =
        (head_ + capacity_ - count_) % capacity_;
    sram_.writeUint(slotMetaAddr(slot), noOwner, 4);
    ENVY_ASSERT(owners_[slot] != noOwner,
                "buffer: pop of an unowned tail slot");
    mapErase(owners_[slot]); // before the owner mirror is cleared
    owners_[slot] = noOwner;
    --count_;
    syncHeader();
    ++statFlushes;
    metFlushes.add();
    metOccupancy.set(count_);
}

LogicalPageId
WriteBuffer::slotOwnerLocked(BufferSlotId slot) const
{
    ENVY_ASSERT(slot.value() < capacity_, "buffer: slot out of range");
    const std::uint32_t v = owners_[slot.value()];
    if (v == noOwner)
        return LogicalPageId::invalid();
    return LogicalPageId(v);
}

std::uint64_t
WriteBuffer::slotOriginLocked(BufferSlotId slot) const
{
    ENVY_ASSERT(slot.value() < capacity_, "buffer: slot out of range");
    return origins_[slot.value()];
}

LogicalPageId
WriteBuffer::slotOwner(BufferSlotId slot) const
{
    MutexLock lock(mu_);
    return slotOwnerLocked(slot);
}

std::uint64_t
WriteBuffer::slotOrigin(BufferSlotId slot) const
{
    MutexLock lock(mu_);
    return slotOriginLocked(slot);
}

BufferSlotId
WriteBuffer::find(LogicalPageId logical) const
{
    MutexLock lock(mu_);
    const std::uint32_t slot =
        mapFind(static_cast<std::uint32_t>(logical.value()));
    return slot != probeEmpty ? BufferSlotId(slot)
                              : BufferSlotId::invalid();
}

std::span<std::uint8_t>
WriteBuffer::slotData(BufferSlotId slot)
{
    ENVY_ASSERT(storeData_, "buffer: slotData in metadata-only mode");
    ENVY_ASSERT(slot.value() < capacity_, "buffer: slot out of range");
    // mutableSpan (not raw().subspan) so dirty tracking sees the
    // page-data writes the controller does through this window.
    return sram_.mutableSpan(slotDataAddr(slot.value()), pageSize_);
}

std::span<const std::uint8_t>
WriteBuffer::slotData(BufferSlotId slot) const
{
    ENVY_ASSERT(storeData_, "buffer: slotData in metadata-only mode");
    ENVY_ASSERT(slot.value() < capacity_, "buffer: slot out of range");
    return std::span<const std::uint8_t>(sram_.raw())
        .subspan(slotDataAddr(slot.value()), pageSize_);
}

bool
WriteBuffer::slotResident(BufferSlotId slot) const
{
    return slotOwner(slot).valid();
}

void
WriteBuffer::reset()
{
    MutexLock lock(mu_);
    for (std::uint32_t s = 0; s < capacity_; ++s)
        sram_.writeUint(slotMetaAddr(s), noOwner, 4);
    owners_.assign(capacity_, noOwner);
    origins_.assign(capacity_, 0);
    probe_.assign(probe_.size(), probeEmpty);
    head_ = 0;
    count_ = 0;
    syncHeader();
}

void
WriteBuffer::recover()
{
    MutexLock lock(mu_);
    head_ = static_cast<std::uint32_t>(
        sram_.readUint(base_ + headOff, 4));
    count_ = static_cast<std::uint32_t>(
        sram_.readUint(base_ + countOff, 4));
    ENVY_ASSERT(head_ < capacity_ && count_ <= capacity_,
                "buffer: corrupt header after power failure");
    // The one legitimate full scan: rebuild the in-core mirrors and
    // the residency map from the durable SRAM slot table.
    probe_.assign(probe_.size(), probeEmpty);
    for (std::uint32_t s = 0; s < capacity_; ++s) {
        owners_[s] = static_cast<std::uint32_t>(
            sram_.readUint(slotMetaAddr(s), 4));
        origins_[s] = static_cast<std::uint32_t>(
            sram_.readUint(slotMetaAddr(s) + 4, 4));
        if (owners_[s] != noOwner)
            mapInsert(owners_[s], s);
    }
}

} // namespace envy
