/**
 * @file
 * Battery-backed SRAM model (paper §3.2, §3.3).
 *
 * eNVy keeps two critical structures in battery-backed SRAM: the page
 * table (mappings must update in place, which Flash cannot do) and the
 * FIFO write buffer (after a copy-on-write the SRAM copy is the *only*
 * copy, so it must survive power failure).
 *
 * The array is the persistence domain of the simulator: components
 * that must survive a crash keep their authoritative state inside this
 * byte array, and the recovery tests "power fail" the system by
 * discarding every in-core structure and rebuilding from these bytes.
 *
 * With dirty tracking enabled (persistent stores only) every mutation
 * marks 64-byte granules in a bitmap; the persist layer drains the
 * dirty ranges into journal records on each flush, so journaling cost
 * scales with bytes actually touched, not with SRAM size.
 */

#ifndef ENVY_SRAM_SRAM_ARRAY_HH
#define ENVY_SRAM_SRAM_ARRAY_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hh"

namespace envy {

class SramArray
{
  public:
    explicit SramArray(std::uint64_t bytes, bool battery_backed = true);

    std::uint64_t size() const { return data_.size(); }
    bool batteryBacked() const { return batteryBacked_; }

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    void read(Addr a, std::span<std::uint8_t> out) const;
    void write(Addr a, std::span<const std::uint8_t> in);

    /** Little-endian fixed-width integer helpers. */
    std::uint64_t readUint(Addr a, unsigned bytes) const;
    void writeUint(Addr a, std::uint64_t v, unsigned bytes);

    /**
     * Simulate a power failure.  Battery-backed contents survive;
     * without a battery the array comes back as garbage (a fixed
     * pseudo-random pattern, so tests are deterministic).
     */
    void powerFail();

    /** Raw view for components that live inside the array. */
    std::span<std::uint8_t> raw() { return {data_.data(), data_.size()}; }

    /**
     * Writable window that is tracked like write(): callers that
     * mutate SRAM through a span (the write buffer's page slots) must
     * use this instead of slicing raw(), or dirty tracking misses the
     * change.
     */
    std::span<std::uint8_t> mutableSpan(Addr a, std::uint64_t len);

    // ---- dirty tracking (persist layer) ---------------------------

    /** Bytes per tracking granule. */
    static constexpr std::uint64_t dirtyGranule = 64;

    /**
     * Start tracking mutations.  Existing contents are considered
     * clean; the caller snapshots them (checkpoint) first.
     */
    void enableDirtyTracking();

    bool dirtyTracking() const { return tracking_; }

    /**
     * Emit every dirty range as (addr, bytes) — coalescing adjacent
     * granules, ascending, clipped to size() — and mark all clean.
     * The caller must exclude concurrent mutators (the commit
     * pipeline quiesces the controller); the atomic bitmap only makes
     * *marking* safe from many threads, not draining while they run.
     */
    void drainDirty(
        const std::function<void(Addr, std::span<const std::uint8_t>)>
            &emit);

    /** True if any granule is dirty (scans the bitmap words). */
    bool anyDirty() const;

  private:
    void markDirty(Addr a, std::uint64_t len)
    {
        if (!tracking_ || len == 0)
            return;
        const std::uint64_t first = a / dirtyGranule;
        const std::uint64_t last = (a + len - 1) / dirtyGranule;
        for (std::uint64_t g = first; g <= last; ++g) {
            // Relaxed fetch_or: concurrent markers on the same word
            // are fine, and the drain happens under the controller's
            // structural lock which orders the data bytes too.
            const std::uint64_t prev = dirtyBits_[g / 64].fetch_or(
                std::uint64_t(1) << (g % 64),
                std::memory_order_relaxed);
            // Summary level: one bit per bitmap word, so the drain
            // scan is ~64x narrower.  Skip when the word was already
            // non-empty — its summary bit is necessarily set.
            if (prev == 0) {
                const std::uint64_t w = g / 64;
                dirtySummary_[w / 64].fetch_or(
                    std::uint64_t(1) << (w % 64),
                    std::memory_order_relaxed);
            }
        }
        dirtyHint_.store(true, std::memory_order_relaxed);
    }

    std::vector<std::uint8_t> data_;
    bool batteryBacked_;
    bool tracking_ = false;
    //! One bit per granule; atomic so concurrent writers under the
    //! structural lock's *shared* mode can mark without racing.
    std::unique_ptr<std::atomic<std::uint64_t>[]> dirtyBits_;
    std::uint64_t dirtyWordCount_ = 0;
    //! Second level: bit w set iff dirtyBits_[w] may be non-zero.
    //! Flash-meta barriers drain once per meta write with only a few
    //! granules marked, so the drain must not walk the full bitmap.
    std::unique_ptr<std::atomic<std::uint64_t>[]> dirtySummary_;
    std::uint64_t summaryWordCount_ = 0;
    //! Set by every markDirty; drainDirty/anyDirty test it before
    //! scanning the bitmap, so the clean-SRAM case (flash-meta
    //! barriers fire one per meta write) costs one load, not a walk
    //! of the whole bitmap.  Callers exclude mutators during drains,
    //! so a clear hint proves a clear bitmap.
    std::atomic<bool> dirtyHint_{false};
};

} // namespace envy

#endif // ENVY_SRAM_SRAM_ARRAY_HH
