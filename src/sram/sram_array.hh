/**
 * @file
 * Battery-backed SRAM model (paper §3.2, §3.3).
 *
 * eNVy keeps two critical structures in battery-backed SRAM: the page
 * table (mappings must update in place, which Flash cannot do) and the
 * FIFO write buffer (after a copy-on-write the SRAM copy is the *only*
 * copy, so it must survive power failure).
 *
 * The array is the persistence domain of the simulator: components
 * that must survive a crash keep their authoritative state inside this
 * byte array, and the recovery tests "power fail" the system by
 * discarding every in-core structure and rebuilding from these bytes.
 */

#ifndef ENVY_SRAM_SRAM_ARRAY_HH
#define ENVY_SRAM_SRAM_ARRAY_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace envy {

class SramArray
{
  public:
    explicit SramArray(std::uint64_t bytes, bool battery_backed = true);

    std::uint64_t size() const { return data_.size(); }
    bool batteryBacked() const { return batteryBacked_; }

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    void read(Addr a, std::span<std::uint8_t> out) const;
    void write(Addr a, std::span<const std::uint8_t> in);

    /** Little-endian fixed-width integer helpers. */
    std::uint64_t readUint(Addr a, unsigned bytes) const;
    void writeUint(Addr a, std::uint64_t v, unsigned bytes);

    /**
     * Simulate a power failure.  Battery-backed contents survive;
     * without a battery the array comes back as garbage (a fixed
     * pseudo-random pattern, so tests are deterministic).
     */
    void powerFail();

    /** Raw view for components that live inside the array. */
    std::span<std::uint8_t> raw() { return {data_.data(), data_.size()}; }

  private:
    std::vector<std::uint8_t> data_;
    bool batteryBacked_;
};

} // namespace envy

#endif // ENVY_SRAM_SRAM_ARRAY_HH
