/**
 * @file
 * Battery-backed SRAM model (paper §3.2, §3.3).
 *
 * eNVy keeps two critical structures in battery-backed SRAM: the page
 * table (mappings must update in place, which Flash cannot do) and the
 * FIFO write buffer (after a copy-on-write the SRAM copy is the *only*
 * copy, so it must survive power failure).
 *
 * The array is the persistence domain of the simulator: components
 * that must survive a crash keep their authoritative state inside this
 * byte array, and the recovery tests "power fail" the system by
 * discarding every in-core structure and rebuilding from these bytes.
 *
 * With dirty tracking enabled (persistent stores only) every mutation
 * marks 64-byte granules in a bitmap; the persist layer drains the
 * dirty ranges into journal records on each flush, so journaling cost
 * scales with bytes actually touched, not with SRAM size.
 */

#ifndef ENVY_SRAM_SRAM_ARRAY_HH
#define ENVY_SRAM_SRAM_ARRAY_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hh"

namespace envy {

class SramArray
{
  public:
    explicit SramArray(std::uint64_t bytes, bool battery_backed = true);

    std::uint64_t size() const { return data_.size(); }
    bool batteryBacked() const { return batteryBacked_; }

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    void read(Addr a, std::span<std::uint8_t> out) const;
    void write(Addr a, std::span<const std::uint8_t> in);

    /** Little-endian fixed-width integer helpers. */
    std::uint64_t readUint(Addr a, unsigned bytes) const;
    void writeUint(Addr a, std::uint64_t v, unsigned bytes);

    /**
     * Simulate a power failure.  Battery-backed contents survive;
     * without a battery the array comes back as garbage (a fixed
     * pseudo-random pattern, so tests are deterministic).
     */
    void powerFail();

    /** Raw view for components that live inside the array. */
    std::span<std::uint8_t> raw() { return {data_.data(), data_.size()}; }

    /**
     * Writable window that is tracked like write(): callers that
     * mutate SRAM through a span (the write buffer's page slots) must
     * use this instead of slicing raw(), or dirty tracking misses the
     * change.
     */
    std::span<std::uint8_t> mutableSpan(Addr a, std::uint64_t len);

    // ---- dirty tracking (persist layer) ---------------------------

    /** Bytes per tracking granule. */
    static constexpr std::uint64_t dirtyGranule = 64;

    /**
     * Start tracking mutations.  Existing contents are considered
     * clean; the caller snapshots them (checkpoint) first.
     */
    void enableDirtyTracking();

    bool dirtyTracking() const { return tracking_; }

    /**
     * Emit every dirty range as (addr, bytes) — coalescing adjacent
     * granules, ascending, clipped to size() — and mark all clean.
     */
    void drainDirty(
        const std::function<void(Addr, std::span<const std::uint8_t>)>
            &emit);

    /** True if any granule is dirty (cheap: list emptiness). */
    bool anyDirty() const { return !dirtyWords_.empty(); }

  private:
    void markDirty(Addr a, std::uint64_t len)
    {
        if (!tracking_ || len == 0)
            return;
        const std::uint64_t first = a / dirtyGranule;
        const std::uint64_t last = (a + len - 1) / dirtyGranule;
        for (std::uint64_t g = first; g <= last; ++g) {
            const std::uint64_t word = g / 64;
            const std::uint64_t bit = g % 64;
            if (dirtyBits_[word] == 0)
                dirtyWords_.push_back(word); // 0 -> nonzero: new word
            dirtyBits_[word] |= std::uint64_t(1) << bit;
        }
    }

    std::vector<std::uint8_t> data_;
    bool batteryBacked_;
    bool tracking_ = false;
    std::vector<std::uint64_t> dirtyBits_; //!< one bit per granule
    std::vector<std::uint64_t> dirtyWords_; //!< words with bits set
};

} // namespace envy

#endif // ENVY_SRAM_SRAM_ARRAY_HH
