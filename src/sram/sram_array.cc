#include "sram/sram_array.hh"

#include <algorithm>

#include "common/logging.hh"

namespace envy {

SramArray::SramArray(std::uint64_t bytes, bool battery_backed)
    : data_(bytes, 0), batteryBacked_(battery_backed)
{
}

std::uint8_t
SramArray::readByte(Addr a) const
{
    ENVY_ASSERT(a < data_.size(), "SRAM read out of range: ", a);
    return data_[a];
}

void
SramArray::writeByte(Addr a, std::uint8_t v)
{
    ENVY_ASSERT(a < data_.size(), "SRAM write out of range: ", a);
    data_[a] = v;
}

void
SramArray::read(Addr a, std::span<std::uint8_t> out) const
{
    ENVY_ASSERT(a + out.size() <= data_.size(),
                "SRAM block read out of range");
    std::copy_n(data_.begin() + a, out.size(), out.begin());
}

void
SramArray::write(Addr a, std::span<const std::uint8_t> in)
{
    ENVY_ASSERT(a + in.size() <= data_.size(),
                "SRAM block write out of range");
    std::copy(in.begin(), in.end(), data_.begin() + a);
}

std::uint64_t
SramArray::readUint(Addr a, unsigned bytes) const
{
    ENVY_ASSERT(bytes <= 8 && a + bytes <= data_.size(),
                "SRAM uint read out of range");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= std::uint64_t(data_[a + i]) << (8 * i);
    return v;
}

void
SramArray::writeUint(Addr a, std::uint64_t v, unsigned bytes)
{
    ENVY_ASSERT(bytes <= 8 && a + bytes <= data_.size(),
                "SRAM uint write out of range");
    for (unsigned i = 0; i < bytes; ++i)
        data_[a + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
SramArray::powerFail()
{
    if (batteryBacked_)
        return;
    // Deterministic garbage so recovery tests are reproducible.
    std::uint64_t x = 0xDEADBEEFCAFEF00Dull;
    for (auto &b : data_) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        b = static_cast<std::uint8_t>(x);
    }
}

} // namespace envy
