#include "sram/sram_array.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace envy {

SramArray::SramArray(std::uint64_t bytes, bool battery_backed)
    : data_(bytes, 0), batteryBacked_(battery_backed)
{
}

std::uint8_t
SramArray::readByte(Addr a) const
{
    ENVY_ASSERT(a < data_.size(), "SRAM read out of range: ", a);
    return data_[a];
}

void
SramArray::writeByte(Addr a, std::uint8_t v)
{
    ENVY_ASSERT(a < data_.size(), "SRAM write out of range: ", a);
    data_[a] = v;
    markDirty(a, 1);
}

void
SramArray::read(Addr a, std::span<std::uint8_t> out) const
{
    ENVY_ASSERT(a + out.size() <= data_.size(),
                "SRAM block read out of range");
    std::copy_n(data_.begin() + a, out.size(), out.begin());
}

void
SramArray::write(Addr a, std::span<const std::uint8_t> in)
{
    ENVY_ASSERT(a + in.size() <= data_.size(),
                "SRAM block write out of range");
    std::copy(in.begin(), in.end(), data_.begin() + a);
    markDirty(a, in.size());
}

std::uint64_t
SramArray::readUint(Addr a, unsigned bytes) const
{
    ENVY_ASSERT(bytes <= 8 && a + bytes <= data_.size(),
                "SRAM uint read out of range");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= std::uint64_t(data_[a + i]) << (8 * i);
    return v;
}

void
SramArray::writeUint(Addr a, std::uint64_t v, unsigned bytes)
{
    ENVY_ASSERT(bytes <= 8 && a + bytes <= data_.size(),
                "SRAM uint write out of range");
    for (unsigned i = 0; i < bytes; ++i)
        data_[a + i] = static_cast<std::uint8_t>(v >> (8 * i));
    markDirty(a, bytes);
}

std::span<std::uint8_t>
SramArray::mutableSpan(Addr a, std::uint64_t len)
{
    ENVY_ASSERT(a + len <= data_.size(),
                "SRAM span out of range");
    // Conservatively dirty up front: the caller holds a raw window,
    // so there is no way to see which bytes it actually changes.
    markDirty(a, len);
    return {data_.data() + a, len};
}

void
SramArray::enableDirtyTracking()
{
    tracking_ = true;
    const std::uint64_t granules =
        (data_.size() + dirtyGranule - 1) / dirtyGranule;
    dirtyWordCount_ = (granules + 63) / 64;
    dirtyBits_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(dirtyWordCount_);
    for (std::uint64_t w = 0; w < dirtyWordCount_; ++w)
        dirtyBits_[w].store(0, std::memory_order_relaxed);
    summaryWordCount_ = (dirtyWordCount_ + 63) / 64;
    dirtySummary_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        summaryWordCount_);
    for (std::uint64_t w = 0; w < summaryWordCount_; ++w)
        dirtySummary_[w].store(0, std::memory_order_relaxed);
}

bool
SramArray::anyDirty() const
{
    if (!dirtyHint_.load(std::memory_order_relaxed))
        return false;
    for (std::uint64_t w = 0; w < summaryWordCount_; ++w)
        if (dirtySummary_[w].load(std::memory_order_relaxed) != 0)
            return true;
    return false;
}

void
SramArray::drainDirty(
    const std::function<void(Addr, std::span<const std::uint8_t>)>
        &emit)
{
    ENVY_ASSERT(tracking_, "SRAM drain without dirty tracking");

    // Nothing marked since the last drain: skip the bitmap walk.
    // (Mutators are excluded while we run, so the hint cannot trail
    // a set bit.)
    if (!dirtyHint_.exchange(false, std::memory_order_relaxed))
        return;

    // Walk set bits in ascending granule order (the bitmap itself is
    // the order), merging adjacent granules into maximal runs before
    // emitting.  The summary level narrows the walk to bitmap words
    // that were actually touched — a barrier drain with two dirty
    // granules reads ~20 summary words, not the few-thousand-word
    // bitmap.  Serial mode takes the same path, so the journal
    // bytes a given mutation history produces are identical whether
    // or not the store runs concurrently.
    std::uint64_t runStart = 0;
    std::uint64_t runEnd = 0; // exclusive granule; 0 == no open run
    const auto flushRun = [&] {
        if (runEnd == 0)
            return;
        const Addr addr = runStart * dirtyGranule;
        const std::uint64_t len =
            std::min(runEnd * dirtyGranule, std::uint64_t(data_.size())) -
            addr;
        emit(addr, std::span<const std::uint8_t>(data_.data() + addr,
                                                 len));
    };
    for (std::uint64_t sw = 0; sw < summaryWordCount_; ++sw) {
        std::uint64_t sbits =
            dirtySummary_[sw].exchange(0, std::memory_order_relaxed);
        while (sbits != 0) {
            const unsigned sbit =
                static_cast<unsigned>(std::countr_zero(sbits));
            sbits &= sbits - 1;
            const std::uint64_t word = sw * 64 + sbit;
            std::uint64_t bits =
                dirtyBits_[word].exchange(0, std::memory_order_relaxed);
            while (bits != 0) {
                const unsigned bit =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                const std::uint64_t g = word * 64 + bit;
                if (runEnd == g) {
                    ++runEnd;
                } else {
                    flushRun();
                    runStart = g;
                    runEnd = g + 1;
                }
            }
        }
    }
    flushRun();
}

void
SramArray::powerFail()
{
    if (batteryBacked_)
        return;
    // Deterministic garbage so recovery tests are reproducible.
    std::uint64_t x = 0xDEADBEEFCAFEF00Dull;
    for (auto &b : data_) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        b = static_cast<std::uint8_t>(x);
    }
}

} // namespace envy
