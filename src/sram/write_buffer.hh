/**
 * @file
 * The battery-backed SRAM FIFO write buffer (paper §3.2).
 *
 * Copy-on-write lands the fresh copy of a page here; the page table is
 * swung to point at it, making the SRAM copy the only valid one.  The
 * buffer is a strict FIFO — "new pages are inserted at the head and
 * pages are flushed from the tail" — because anything fancier would be
 * hard to build in hardware.  Re-writes of a resident page update it
 * in place without moving it, which is what absorbs the hot TPC-A
 * teller/branch records and keeps the flush rate near one page per
 * transaction.
 *
 * All durable state (slot owners, origin tags, head/count) lives in
 * the provided SramArray region so that recovery can rebuild the
 * buffer after a power failure.  Because slots are only allocated at
 * the head and released at the tail, a ring layout gives every
 * resident page a stable slot index for the page table to reference.
 */

#ifndef ENVY_SRAM_WRITE_BUFFER_HH
#define ENVY_SRAM_WRITE_BUFFER_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "obs/metrics.hh"
#include "sim/stats.hh"
#include "sram/sram_array.hh"

namespace envy {

class WriteBuffer : public StatGroup
{
  public:
    /**
     * @param sram        backing battery-backed SRAM
     * @param base        byte offset of this buffer's region in @p sram
     * @param capacity    page slots
     * @param page_size   bytes per page
     * @param store_data  false in metadata-only simulations
     * @param threshold   background flushing starts at this occupancy;
     *                    0 picks the default (capacity / 2)
     */
    WriteBuffer(SramArray &sram, Addr base, std::uint32_t capacity,
                std::uint32_t page_size, bool store_data,
                std::uint32_t threshold = 0, StatGroup *parent = nullptr,
                obs::MetricsRegistry *metrics = nullptr);

    /** Bytes of SRAM the buffer occupies (header + slots). */
    static std::uint64_t bytesNeeded(std::uint32_t capacity,
                                     std::uint32_t page_size,
                                     bool store_data);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t size() const
    {
        MutexLock lock(mu_);
        return count_;
    }
    bool empty() const
    {
        MutexLock lock(mu_);
        return count_ == 0;
    }
    bool full() const
    {
        MutexLock lock(mu_);
        return count_ == capacity_;
    }
    /** Occupancy at or above which background flushing should run. */
    bool aboveThreshold() const
    {
        MutexLock lock(mu_);
        return count_ >= threshold_;
    }
    std::uint32_t threshold() const { return threshold_; }

    /**
     * Insert a page at the head.  The caller (controller) must make
     * room first if the buffer is full.
     *
     * @param logical  owning logical page
     * @param origin   policy tag: the flash segment the page was
     *                 copied from (locality gathering flushes it back
     *                 there; hybrid flushes back to its partition)
     * @return slot index for the page table to reference
     */
    BufferSlotId push(LogicalPageId logical, std::uint64_t origin);

    /** Oldest resident page (the next flush victim). */
    struct TailInfo
    {
        BufferSlotId slot;
        LogicalPageId logical;
        std::uint64_t origin;
    };
    TailInfo tail() const;

    /** Release the tail slot after its page has been flushed. */
    void popTail();

    LogicalPageId slotOwner(BufferSlotId slot) const;
    std::uint64_t slotOrigin(BufferSlotId slot) const;

    /**
     * Ring slot currently holding @p logical, or an invalid id if the
     * page is not resident.  O(1) via the logical-page -> ring-slot
     * map kept in lockstep with the FIFO.
     */
    BufferSlotId find(LogicalPageId logical) const;

    /** Page bytes of a resident slot (functional mode). */
    std::span<std::uint8_t> slotData(BufferSlotId slot);
    std::span<const std::uint8_t> slotData(BufferSlotId slot) const;

    /** True if @p slot currently holds a resident page. */
    bool slotResident(BufferSlotId slot) const;

    /**
     * Stripe lock guarding the *data* window of @p slot (PR 8).
     * Concurrent hit-writers and the flusher serialize one slot's page
     * bytes through this; the FIFO metadata stays under mu_.  Lock
     * order: acquired after the controller's shard/structural locks
     * and before mu_ (docs/INTERNALS.md lock-order table).  A writer
     * must re-validate slotOwner(slot) after taking the stripe: the
     * flusher holds it across program + map-swing + popTail, so an
     * owner match under the stripe proves the slot is still live.
     */
    Mutex &slotStripe(BufferSlotId slot)
    {
        return stripeMu_[slot.value() & (numStripes - 1)];
    }

    /**
     * Rebuild the in-core mirrors from SRAM after a power failure.
     * Only metadata is mirrored, so this re-reads the header.
     */
    void recover();

    /** Empty the buffer (recovery rebuilds it entry by entry). */
    void reset();

    Counter statInserts;
    Counter statFlushes;

    // Observability metrics (docs/OBSERVABILITY.md).
    obs::Counter metInserts;
    obs::Counter metFlushes;
    obs::Gauge metOccupancy; //!< occupancy level; high() = high-water

  private:
    // SRAM layout: [head:4][count:4] then per-slot {owner:4, origin:4},
    // then page data.
    static constexpr Addr headOff = 0;
    static constexpr Addr countOff = 4;
    static constexpr Addr slotsOff = 8;
    static constexpr std::uint32_t noOwner = 0xFFFFFFFFu;

    Addr slotMetaAddr(std::uint32_t ring_slot) const
    {
        return base_ + slotsOff + Addr(ring_slot) * 8;
    }
    Addr slotDataAddr(std::uint32_t ring_slot) const
    {
        return dataBase_ + Addr(ring_slot) * pageSize_;
    }

    void syncHeader() ENVY_REQUIRES(mu_);
    LogicalPageId slotOwnerLocked(BufferSlotId slot) const
        ENVY_REQUIRES(mu_);
    std::uint64_t slotOriginLocked(BufferSlotId slot) const
        ENVY_REQUIRES(mu_);

    SramArray &sram_;
    Addr base_;
    std::uint32_t capacity_;
    std::uint32_t pageSize_;
    bool storeData_;
    std::uint32_t threshold_;
    Addr dataBase_;

    // Guards the FIFO metadata below (docs/STATIC_ANALYSIS.md §4).
    // Slot *data* windows are not guarded: the page bytes belong to
    // the SRAM array and are raced only by design (data plane).
    mutable Mutex mu_;

    // In-core mirrors of the SRAM header (authoritative copy is SRAM).
    std::uint32_t head_ ENVY_GUARDED_BY(mu_) = 0; //!< next insertion
    std::uint32_t count_ ENVY_GUARDED_BY(mu_) = 0;

    // In-core mirrors of the per-slot metadata, plus a logical-page ->
    // ring-slot map, all kept in lockstep with the FIFO so lookups
    // never walk the SRAM slot table.  recover() rebuilds them with
    // the one legitimate full scan.
    std::vector<std::uint32_t> owners_ ENVY_GUARDED_BY(mu_);
    std::vector<std::uint32_t> origins_ ENVY_GUARDED_BY(mu_);

    // Residency map as a flat open-addressing table (copy-on-write
    // hits it on every host write, so it must not allocate per push
    // the way a node-based map does).  Entries hold a ring slot or
    // probeEmpty; the key of an occupied entry is owners_[entry].
    // Power-of-two size >= 2 * capacity keeps probes short; erase
    // uses backward-shift deletion so chains stay contiguous.
    static constexpr std::uint32_t probeEmpty = 0xFFFFFFFFu;
    std::uint32_t probeHome(std::uint32_t key) const
    {
        return static_cast<std::uint32_t>(
                   (std::uint64_t(key) * 0x9E3779B97F4A7C15ull) >> 32) &
               probeMask_;
    }
    void mapInsert(std::uint32_t key, std::uint32_t ring_slot)
        ENVY_REQUIRES(mu_);
    void mapErase(std::uint32_t key) ENVY_REQUIRES(mu_);
    std::uint32_t mapFind(std::uint32_t key) const ENVY_REQUIRES(mu_);

    std::vector<std::uint32_t> probe_ ENVY_GUARDED_BY(mu_);
    std::uint32_t probeMask_ = 0;

    // Data stripe locks (see slotStripe()).
    static constexpr std::uint32_t numStripes = 64;
    std::array<Mutex, numStripes> stripeMu_;
};

} // namespace envy

#endif // ENVY_SRAM_WRITE_BUFFER_HH
