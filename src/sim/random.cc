#include "sim/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace envy {

namespace {

/** splitmix64, used to expand a single seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    ENVY_ASSERT(bound > 0, "below(0) is meaningless");
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            m = static_cast<__uint128_t>(next()) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    ENVY_ASSERT(lo <= hi, "inverted range");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

BimodalPicker::BimodalPicker(std::uint64_t population, double hot_fraction,
                             double hot_access)
    : population_(population),
      hotCount_(static_cast<std::uint64_t>(
          static_cast<double>(population) * hot_fraction)),
      hotFraction_(hot_fraction),
      hotAccess_(hot_access)
{
    ENVY_ASSERT(population > 0, "empty population");
    ENVY_ASSERT(hot_fraction > 0.0 && hot_fraction <= 1.0,
                "hot fraction out of range: ", hot_fraction);
    ENVY_ASSERT(hot_access >= 0.0 && hot_access <= 1.0,
                "hot access fraction out of range: ", hot_access);
    if (hotCount_ == 0)
        hotCount_ = 1;
}

std::uint64_t
BimodalPicker::pick(Rng &rng) const
{
    if (hotCount_ >= population_)
        return rng.below(population_);
    if (rng.chance(hotAccess_))
        return rng.below(hotCount_);
    return hotCount_ + rng.below(population_ - hotCount_);
}

} // namespace envy
