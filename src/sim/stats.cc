#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <iomanip>

#include "common/logging.hh"

namespace envy {

Stat::Stat(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    ENVY_ASSERT(group != nullptr, "stat ", name_, " needs a group");
    group->addStat(this);
}

void
Counter::print(std::ostream &os) const
{
    os << value_;
}

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Average::print(std::ostream &os) const
{
    os << mean() << " (n=" << count_ << ", min=" << min()
       << ", max=" << max() << ")";
}

void
Average::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(StatGroup *group, std::string name, std::string desc)
    : Stat(group, std::move(name), std::move(desc)),
      buckets_(numBuckets, 0)
{
}

void
Histogram::sample(std::uint64_t v)
{
    // Bucket k holds values in [2^(k-1), 2^k); bucket 0 holds {0}.
    int bucket = v == 0 ? 0 : 64 - std::countl_zero(v);
    buckets_[std::min(bucket, numBuckets - 1)]++;
    ++count_;
    sum_ += static_cast<double>(v);
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    const double target = static_cast<double>(count_) * p / 100.0;
    double seen = 0.0;
    for (int k = 0; k < numBuckets; ++k) {
        seen += static_cast<double>(buckets_[k]);
        if (seen >= target)
            return k == 0 ? 0 : (1ull << std::min(k, 63));
    }
    return 1ull << 63;
}

void
Histogram::print(std::ostream &os) const
{
    os << "mean=" << mean() << " p50=" << percentile(50)
       << " p99=" << percentile(99) << " n=" << count_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

void
StatGroup::addStat(Stat *stat)
{
    stats_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    std::erase(children_, child);
}

void
StatGroup::printStats(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const Stat *s : stats_) {
        std::ostringstream value;
        s->print(value);
        os << std::left << std::setw(44) << (full + "." + s->name())
           << " " << std::setw(28) << value.str()
           << " # " << s->desc() << "\n";
    }
    for (const StatGroup *c : children_)
        c->printStats(os, full);
}

void
StatGroup::resetStats()
{
    for (Stat *s : stats_)
        s->reset();
    for (StatGroup *c : children_)
        c->resetStats();
}

} // namespace envy
