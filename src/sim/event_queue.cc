#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace envy {

void
EventQueue::schedule(Tick when, Callback cb)
{
    ENVY_ASSERT(when >= now_, "scheduling into the past: ", when,
                " < ", now_);
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top returns const&; move out via const_cast is
    // avoided by copying the (cheap) handle and popping first.
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    now_ = e.when;
    e.cb();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        if (!step())
            break;
    }
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (step()) {
    }
}

} // namespace envy
