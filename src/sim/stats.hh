/**
 * @file
 * Lightweight statistics package in the spirit of the gem5 Stats API.
 *
 * Statistics register themselves with a StatGroup, which can render a
 * formatted report.  The simulator uses these to produce the numbers
 * behind every figure in the paper's evaluation (Section 5).
 */

#ifndef ENVY_SIM_STATS_HH
#define ENVY_SIM_STATS_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace envy {

class StatGroup;

/** Base class for named, self-describing statistics. */
class Stat
{
  public:
    Stat(StatGroup *group, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the value column(s) for the report. */
    virtual void print(std::ostream &os) const = 0;
    /** Reset to the just-constructed state (measurement windows). */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonically increasing event counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    Counter &operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void print(std::ostream &os) const override;
    void reset() override { value_.store(0, std::memory_order_relaxed); }

  private:
    // Relaxed atomic: counters are bumped from worker/cleaner threads
    // (e.g. statPageReads under the shared structural lock) and only
    // ever read for reporting after a quiesce point.
    std::atomic<std::uint64_t> value_{0};
};

/** Running mean / min / max of a sampled quantity. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Power-of-two bucketed histogram for latency-like quantities. */
class Histogram : public Stat
{
  public:
    Histogram(StatGroup *group, std::string name, std::string desc);

    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    /** Approximate p-th percentile (0 < p < 100) from the buckets. */
    std::uint64_t percentile(double p) const;

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    static constexpr int numBuckets = 64;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Container for the statistics of one component.  Groups nest; the
 * report walks the tree depth-first.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &statName() const { return name_; }

    void addStat(Stat *stat);
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    /** Recursively render "group.stat  value  # desc" lines. */
    void printStats(std::ostream &os, const std::string &prefix = "") const;

    /** Recursively reset all statistics in this subtree. */
    void resetStats();

  private:
    std::string name_;
    StatGroup *parent_;
    std::vector<Stat *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace envy

#endif // ENVY_SIM_STATS_HH
