/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * A self-contained xoshiro256** generator is used instead of
 * std::mt19937 so that simulation results are reproducible across
 * standard library implementations.  Distribution helpers cover the
 * paper's needs: uniform account selection, exponential transaction
 * inter-arrival times (§5.2) and the bimodal "x/y" write locality used
 * throughout §4.
 */

#ifndef ENVY_SIM_RANDOM_HH
#define ENVY_SIM_RANDOM_HH

#include <cstdint>

namespace envy {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Raw 64 random bits. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Bernoulli draw. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

/**
 * Bimodal access distribution over [0, population).
 *
 * "hotFraction/hotAccess" in the paper's notation "x/y": a fraction
 * hotAccess of draws land uniformly inside the first hotFraction of
 * the population; the rest land uniformly in the remainder.  "50/50"
 * therefore degenerates to a uniform distribution.
 */
class BimodalPicker
{
  public:
    BimodalPicker(std::uint64_t population, double hot_fraction,
                  double hot_access);

    std::uint64_t pick(Rng &rng) const;

    std::uint64_t population() const { return population_; }
    std::uint64_t hotCount() const { return hotCount_; }
    double hotFraction() const { return hotFraction_; }
    double hotAccess() const { return hotAccess_; }

  private:
    std::uint64_t population_;
    std::uint64_t hotCount_;
    double hotFraction_;
    double hotAccess_;
};

} // namespace envy

#endif // ENVY_SIM_RANDOM_HH
