/**
 * @file
 * Minimal discrete-event engine.
 *
 * The heavy TPC-A timing runs use a specialised sequential loop (see
 * envysim/timed_system.hh) for speed, but several components — the
 * background flusher tests, the parallel-bank extension and the
 * failure-injection tests — need a general calendar of timed events.
 */

#ifndef ENVY_SIM_EVENT_QUEUE_HH
#define ENVY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace envy {

/** Time-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Run a single event; returns false when the queue is empty. */
    bool step();

    /** Run events until the queue drains or @p limit is reached. */
    void runUntil(Tick limit);

    /** Run every pending event. */
    void runAll();

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq; //!< FIFO tiebreak for simultaneous events.
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace envy

#endif // ENVY_SIM_EVENT_QUEUE_HH
