/**
 * @file
 * Quickstart: eNVy as a linear, persistent, word-addressable memory.
 *
 * The paper's pitch (§1): storage "should be provided by means of
 * word-sized reads and writes, just as with conventional memory" —
 * no disk blocks, no serialisation formats.  This example builds a
 * small store, writes a few in-place data structures, shows the
 * copy-on-write machinery at work underneath, and survives a
 * simulated power failure.
 *
 *   ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "envy/envy_store.hh"

using namespace envy;

int
main()
{
    // A laptop-sized store: the tiny() geometry is 2 MiB of "flash"
    // with all of the real machinery (COW, FIFO write buffer,
    // hybrid cleaning, wear leveling).
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    EnvyStore store(cfg);

    std::printf("created an eNVy store: %llu bytes, %llu segments, "
                "%u-byte pages\n",
                static_cast<unsigned long long>(store.size()),
                static_cast<unsigned long long>(
                    store.config().geom.numSegments()),
                store.config().geom.pageSize);

    // 1. Plain in-place updates, like memory.
    store.writeU64(0x100, 42);
    store.writeU64(0x100, 43); // no erase cycle needed: COW + remap
    std::printf("in-place update: wrote 42 then 43, read back %llu\n",
                static_cast<unsigned long long>(
                    store.readU64(0x100)));

    // 2. A little linked list threaded through the address space —
    // pointer-chasing data structures need no save format.
    Addr node = 0x1000;
    for (int i = 0; i < 5; ++i) {
        const Addr next = node + 64;
        store.writeU64(node, i * 10);       // payload
        store.writeU64(node + 8,
                       i == 4 ? 0 : next);  // next pointer
        node = next;
    }
    std::printf("linked list payloads:");
    for (Addr n = 0x1000; n != 0;) {
        std::printf(" %llu", static_cast<unsigned long long>(
                                 store.readU64(n)));
        n = store.readU64(n + 8);
    }
    std::printf("\n");

    // 3. Rewrite a large region enough times that the flash fills
    // with superseded copies and the cleaner has to reclaim space.
    const std::uint64_t region_pages = 4096;
    const std::uint32_t ps = store.config().geom.pageSize;
    for (int round = 0; round < 30000; ++round)
        store.writeU32(0x2000 + std::uint64_t(round * 37 %
                                              region_pages) * ps,
                       round);
    std::printf("after churn: %llu copy-on-writes, %llu cleans, "
                "cleaning cost %.2f\n",
                static_cast<unsigned long long>(
                    store.controller().statCows.value()),
                static_cast<unsigned long long>(
                    store.cleanerRef().statCleans.value()),
                store.cleaningCost());

    // 4. Power failure: the page table and write buffer live in
    // battery-backed SRAM, the rest is flash — nothing is lost.
    store.powerFailAndRecover();
    std::printf("after power failure: list head %llu, last counter "
                "%u\n",
                static_cast<unsigned long long>(
                    store.readU64(0x1000)),
                store.readU32(0x2000 +
                              std::uint64_t(29999 * 37 %
                                            region_pages) *
                                  ps));

    std::printf("\nfull statistics:\n");
    store.printStats(std::cout);
    return 0;
}
