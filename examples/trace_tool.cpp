/**
 * @file
 * Capture and replay storage traces.
 *
 *   ./trace_tool record tpca out.trc [txns=20000]
 *   ./trace_tool record bimodal out.trc [writes=50000] \
 *       [locality=10/90]
 *   ./trace_tool replay in.trc [policy=hybrid] [partition=4]
 *
 * `replay` runs the identical byte stream against the chosen
 * configuration, so two invocations give an apples-to-apples
 * comparison of cleaning behaviour — the workflow behind the §4
 * experiments, but for workloads you bring yourself.
 */

#include <cstdio>
#include <string>

#include "envysim/config.hh"
#include "envysim/replay.hh"
#include "workload/bimodal.hh"
#include "workload/tpca.hh"

using namespace envy;

namespace {

int
record(const std::string &kind, const std::string &path,
       const Options &opts)
{
    Trace trace;
    if (kind == "tpca") {
        const std::uint64_t txns = opts.getUint("txns", 20000);
        TpcaConfig cfg;
        cfg.numAccounts = opts.getUint("accounts", 100000);
        TpcaWorkload w(cfg, opts.getUint("seed", 1));
        std::vector<StorageAccess> txn;
        for (std::uint64_t i = 0; i < txns; ++i) {
            w.nextTransaction(txn);
            for (const auto &a : txn)
                trace.append(a);
        }
    } else if (kind == "bimodal") {
        const std::uint64_t writes = opts.getUint("writes", 50000);
        const LocalitySpec spec = LocalitySpec::parse(
            opts.getString("locality", "10/90"));
        const std::uint64_t pages = opts.getUint("pages", 16384);
        BimodalWriteWorkload w(pages, spec, opts.getUint("seed", 1));
        for (std::uint64_t i = 0; i < writes; ++i)
            trace.append(w.nextPage().value() * 256, 4, true);
    } else {
        std::fprintf(stderr, "unknown workload '%s'\n", kind.c_str());
        return 2;
    }
    trace.save(path);
    std::printf("recorded %zu accesses (%llu reads, %llu writes) "
                "to %s\n",
                trace.size(),
                static_cast<unsigned long long>(trace.readCount()),
                static_cast<unsigned long long>(trace.writeCount()),
                path.c_str());
    return 0;
}

int
replay(const std::string &path, const Options &opts)
{
    const Trace trace = Trace::load(path);
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    cfg.geom.writeBufferPages =
        static_cast<std::uint32_t>(opts.getUint("buffer", 64));
    cfg.storeData = false; // replay studies the machinery, not data
    cfg.policy = opts.getPolicy("policy", PolicyKind::Hybrid);
    cfg.partitionSize =
        static_cast<std::uint32_t>(opts.getUint("partition", 4));
    EnvyStore store(cfg);

    const ReplayResult r = replayTrace(store, trace);
    std::printf("replayed %llu reads / %llu writes with %s:\n",
                static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.writes),
                policyKindName(cfg.policy));
    std::printf("  copy-on-writes  %llu\n",
                static_cast<unsigned long long>(r.cows));
    std::printf("  buffer hits     %llu\n",
                static_cast<unsigned long long>(r.bufferHits));
    std::printf("  flushes         %llu\n",
                static_cast<unsigned long long>(r.flushes));
    std::printf("  cleans          %llu\n",
                static_cast<unsigned long long>(r.cleans));
    std::printf("  cleaning cost   %.3f\n", r.cleaningCost);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s record <tpca|bimodal> <file> "
                     "[key=value...]\n"
                     "       %s replay <file> [key=value...]\n",
                     argv[0], argv[0]);
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "record" && argc >= 4) {
        const Options opts(argc - 3, argv + 3);
        return record(argv[2], argv[3], opts);
    }
    if (mode == "replay") {
        const Options opts(argc - 2, argv + 2);
        return replay(argv[2], opts);
    }
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
}
