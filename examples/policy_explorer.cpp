/**
 * @file
 * Interactive companion to the §4 experiments: run any cleaning
 * policy against any locality/utilization/geometry and print the
 * cleaning cost, wear picture and per-segment distribution.
 *
 *   ./policy_explorer policy=hybrid locality=10/90 segments=128 \
 *       pages=4096 util=0.8 partition=16 wear=100
 *
 * Try:
 *   policy=greedy locality=5/95      (greedy drowning in cold data)
 *   policy=lg locality=5/95          (gathering paying off)
 *   policy=hybrid partition=1        (degenerates to gathering)
 *   policy=hybrid partition=128      (degenerates to FIFO)
 */

#include <cstdio>

#include "envysim/config.hh"
#include "envysim/experiment.hh"
#include "envysim/policy_sim.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const Options opts(argc, argv);
    PolicySimParams p;
    p.policy = opts.getPolicy("policy", PolicyKind::Hybrid);
    p.locality =
        LocalitySpec::parse(opts.getString("locality", "10/90"));
    p.numSegments =
        static_cast<std::uint32_t>(opts.getUint("segments", 128));
    p.pagesPerSegment = opts.getUint("pages", 4096);
    p.utilization = opts.getDouble("util", 0.8);
    p.partitionSize =
        static_cast<std::uint32_t>(opts.getUint("partition", 16));
    p.wearThreshold = opts.getUint("wear", 100);
    p.seed = opts.getUint("seed", 42);
    if (opts.has("warmup"))
        p.warmupChunks =
            static_cast<std::uint32_t>(opts.getUint("warmup", 0));
    opts.warnUnused();

    std::printf("running %s at locality %s, %u segments x %llu "
                "pages, utilization %.0f%%...\n",
                policyKindName(p.policy), p.locality.label().c_str(),
                p.numSegments,
                static_cast<unsigned long long>(p.pagesPerSegment),
                p.utilization * 100.0);

    const PolicySimResult r = runPolicySim(p);

    ResultTable t("Results");
    t.setColumns({"metric", "value"});
    t.addRow({"cleaning cost (programs/flush)",
              ResultTable::num(r.cleaningCost, 3)});
    t.addRow({"measured flushes", ResultTable::integer(r.writes)});
    t.addRow({"cleans", ResultTable::integer(r.cleans)});
    t.addRow({"avg cleaned-segment utilization",
              ResultTable::percent(r.avgCleanedUtilization, 1)});
    t.addRow({"wear spread (erase cycles)",
              ResultTable::integer(r.wearSpread)});
    t.addRow({"wear rotations",
              ResultTable::integer(r.wearRotations)});
    t.addRow({"warmup chunks used",
              ResultTable::integer(r.warmupChunksUsed)});
    t.print();
    return 0;
}
