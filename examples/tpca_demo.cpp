/**
 * @file
 * The paper's motivating workload, for real: a TPC-A banking
 * database (branch/teller/account records plus three B-tree
 * indices) living entirely inside an eNVy store and executing
 * genuine debit/credit transactions — §5.2 done functionally rather
 * than as an access-shape simulation.
 *
 *   ./tpca_demo [accounts=20000] [transactions=50000] [seed=1]
 *               [persist=PATH] [persist_checkpoint_bytes=N]
 *
 * With `persist=PATH` the store lives in a real file pair
 * (docs/PERSISTENCE.md): the first run creates PATH, later runs
 * recover whatever state the previous process — cleanly exited or
 * SIGKILLed — left behind.
 */

#include <cstdio>

#include "db/tpca_db.hh"
#include "envysim/config.hh"
#include "persist/backend.hh"
#include "sim/random.hh"

using namespace envy;

int
main(int argc, char **argv)
{
    const Options opts(argc, argv);
    const std::uint64_t accounts = opts.getUint("accounts", 20000);
    const std::uint64_t transactions =
        opts.getUint("transactions", 50000);
    const std::uint64_t seed = opts.getUint("seed", 1);

    // Size the store to the database: records plus index slack.
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    while (cfg.geom.logicalBytes().value() < accounts * 140 + 512 * KiB)
        cfg.geom.numBanks *= 2;
    opts.applyPersist(cfg);
    opts.warnUnused();
    EnvyStore store(cfg);
    if (store.persistent())
        std::printf("persistent store at %s: %s\n",
                    cfg.persistPath.c_str(),
                    store.persistReport().created ? "created"
                                                  : "recovered");

    TpcaDatabase::Params params;
    params.accounts = accounts;
    params.accountsPerTeller = 1000;
    params.tellersPerBranch = 10;
    TpcaDatabase db(store, params);

    std::printf("loaded TPC-A: %llu accounts, %llu tellers, %llu "
                "branches in a %llu-byte store\n",
                static_cast<unsigned long long>(db.accounts()),
                static_cast<unsigned long long>(db.tellers()),
                static_cast<unsigned long long>(db.branches()),
                static_cast<unsigned long long>(store.size()));

    Rng rng(seed);
    std::int64_t total_moved = 0;
    for (std::uint64_t i = 0; i < transactions; ++i) {
        const std::uint64_t account = rng.below(db.accounts());
        const std::int64_t amount =
            static_cast<std::int64_t>(rng.between(1, 1000)) - 500;
        db.run(account, amount);
        total_moved += amount;
    }

    std::printf("ran %llu transactions (net amount %lld)\n",
                static_cast<unsigned long long>(transactions),
                static_cast<long long>(total_moved));
    std::printf("storage-level activity: %llu host writes, %llu "
                "copy-on-writes, %llu flushes, %llu cleans, "
                "cleaning cost %.2f\n",
                static_cast<unsigned long long>(
                    store.controller().statHostWrites.value()),
                static_cast<unsigned long long>(
                    store.controller().statCows.value()),
                static_cast<unsigned long long>(
                    store.writeBuffer().statFlushes.value()),
                static_cast<unsigned long long>(
                    store.cleanerRef().statCleans.value()),
                store.cleaningCost());

    std::int64_t branch_sum = 0;
    for (std::uint64_t b = 0; b < db.branches(); ++b)
        branch_sum += db.branchBalance(b);
    std::printf("sum of branch balances: %lld (must equal the net "
                "amount)\n",
                static_cast<long long>(branch_sum));

    std::printf("consistency sweep (balances + indices): %s\n",
                db.consistent() ? "OK" : "FAILED");

    // Crash it for good measure: a database on eNVy needs no redo
    // log — the storage itself is the durable state.
    store.powerFailAndRecover();
    std::printf("after power failure: %s\n",
                db.consistent() ? "still consistent" : "CORRUPT");
    return db.consistent() ? 0 : 1;
}
