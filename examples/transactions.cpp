/**
 * @file
 * §6 hardware atomic transactions in action: eNVy's copy-on-write
 * already preserves the old flash copy of every modified page, so a
 * transaction can roll back "simply by copying data back from
 * Flash" — no write-ahead log, no checkpoint files.
 *
 * The demo moves money between two accounts with a deliberately
 * injected failure between the debit and the credit, then shows the
 * rollback restoring the invariant, including while the cleaner is
 * actively relocating the shadow copies.
 *
 *   ./transactions
 */

#include <cstdio>

#include "sim/random.hh"
#include "txn/shadow.hh"

using namespace envy;

namespace {

std::int64_t
balance(EnvyStore &store, Addr account)
{
    return static_cast<std::int64_t>(store.readU64(account));
}

void
setBalance(ShadowManager &txns, ShadowManager::TxnId t, Addr account,
           std::int64_t v)
{
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(v) >> (8 * i));
    txns.write(t, account, buf);
}

} // namespace

int
main()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    EnvyStore store(cfg);
    ShadowManager txns(store);

    const Addr alice = 0x1000, bob = 0x9000;
    store.writeU64(alice, 1000);
    store.writeU64(bob, 1000);
    store.flushAll(); // balances now live in flash

    std::printf("start: alice=%lld bob=%lld\n",
                static_cast<long long>(balance(store, alice)),
                static_cast<long long>(balance(store, bob)));

    // A transfer that fails halfway: debit applied, credit not.
    {
        const auto t = txns.begin();
        setBalance(txns, t, alice, balance(store, alice) - 300);
        std::printf("mid-transaction (debited, not credited): "
                    "alice=%lld bob=%lld, %zu shadow page(s) "
                    "pinned in flash\n",
                    static_cast<long long>(balance(store, alice)),
                    static_cast<long long>(balance(store, bob)),
                    txns.shadowCount());
        txns.abort(t);
        std::printf("after abort: alice=%lld bob=%lld\n",
                    static_cast<long long>(balance(store, alice)),
                    static_cast<long long>(balance(store, bob)));
    }

    // The same transfer, committed.
    {
        const auto t = txns.begin();
        setBalance(txns, t, alice, balance(store, alice) - 300);
        setBalance(txns, t, bob, balance(store, bob) + 300);
        txns.commit(t);
        std::printf("after commit: alice=%lld bob=%lld\n",
                    static_cast<long long>(balance(store, alice)),
                    static_cast<long long>(balance(store, bob)));
    }

    // Now the hard part the paper calls out: the controller must
    // "protect [shadows] from being cleaned".  Open a transaction,
    // then grind the store so hard the cleaner relocates everything
    // under it — the pinned pre-image must follow.
    {
        const auto t = txns.begin();
        setBalance(txns, t, alice, 0); // to be rolled back
        const auto cleans0 = store.cleanerRef().statCleans.value();
        Rng rng(9);
        for (int i = 0; i < 60000; ++i)
            store.writeU8(rng.below(store.size()), 0x5A);
        std::printf("ground the store: %llu cleans while the "
                    "transaction stayed open\n",
                    static_cast<unsigned long long>(
                        store.cleanerRef().statCleans.value() -
                        cleans0));
        txns.abort(t);
        std::printf("after abort-under-churn: alice=%lld "
                    "(expected 700)\n",
                    static_cast<long long>(balance(store, alice)));
    }

    return balance(store, alice) == 700 &&
                   balance(store, bob) == 1300
               ? 0
               : 1;
}
