/**
 * @file
 * The backwards-compatibility path of paper §1: "a simple RAM disk
 * program can make a memory array usable by a standard file system."
 *
 * This tool formats an eNVy store as a toy block-device image with a
 * trivial file table (a FAT-like directory in the first sectors),
 * stores a few "files", then re-reads them through the sector
 * interface — while also demonstrating why the paper prefers the
 * mapped interface: the same one-word update costs a full sector
 * read-modify-write through the disk API.
 *
 *   ./ramdisk_tool
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ramdisk/ram_disk.hh"

using namespace envy;

namespace {

// Directory sector layout: 16 entries of {name[24], sector:4,
// bytes:4}.
struct DirEntry
{
    char name[24];
    std::uint32_t sector;
    std::uint32_t bytes;
};

void
writeFile(RamDisk &disk, std::uint32_t slot, const char *name,
          std::uint32_t first_sector, const std::string &content)
{
    std::vector<std::uint8_t> dir(RamDisk::sectorBytes);
    disk.readSector(0, dir);
    DirEntry e{};
    std::snprintf(e.name, sizeof(e.name), "%s", name);
    e.sector = first_sector;
    e.bytes = static_cast<std::uint32_t>(content.size());
    std::memcpy(dir.data() + slot * sizeof(DirEntry), &e, sizeof(e));
    disk.writeSector(0, dir);

    std::vector<std::uint8_t> sector(RamDisk::sectorBytes, 0);
    for (std::uint32_t off = 0, s = first_sector;
         off < content.size(); off += RamDisk::sectorBytes, ++s) {
        const std::size_t n = std::min<std::size_t>(
            RamDisk::sectorBytes, content.size() - off);
        std::fill(sector.begin(), sector.end(), 0);
        std::memcpy(sector.data(), content.data() + off, n);
        disk.writeSector(s, sector);
    }
}

std::string
readFile(RamDisk &disk, std::uint32_t slot)
{
    std::vector<std::uint8_t> dir(RamDisk::sectorBytes);
    disk.readSector(0, dir);
    DirEntry e{};
    std::memcpy(&e, dir.data() + slot * sizeof(DirEntry), sizeof(e));

    std::string content(e.bytes, '\0');
    std::vector<std::uint8_t> sector(RamDisk::sectorBytes);
    for (std::uint32_t off = 0, s = e.sector; off < e.bytes;
         off += RamDisk::sectorBytes, ++s) {
        disk.readSector(s, sector);
        const std::size_t n = std::min<std::size_t>(
            RamDisk::sectorBytes, e.bytes - off);
        std::memcpy(content.data() + off, sector.data(), n);
    }
    return content;
}

} // namespace

int
main()
{
    EnvyConfig cfg;
    cfg.geom = Geometry::tiny();
    EnvyStore store(cfg);
    RamDisk disk(store);

    std::printf("eNVy store as a block device: %llu sectors of %u "
                "bytes\n",
                static_cast<unsigned long long>(disk.numSectors()),
                RamDisk::sectorBytes);

    writeFile(disk, 0, "readme.txt", 16,
              "eNVy looks like a disk when you need one.");
    writeFile(disk, 1, "data.bin", 32,
              std::string(1500, 'x') + "END");

    std::printf("file 0: \"%s\"\n", readFile(disk, 0).c_str());
    const std::string data = readFile(disk, 1);
    std::printf("file 1: %zu bytes, tail \"%s\"\n", data.size(),
                data.substr(data.size() - 3).c_str());

    // The pathlength argument (§1): update one word both ways.
    const auto writes_before = disk.sectorWrites();
    std::vector<std::uint8_t> sector(RamDisk::sectorBytes);
    disk.readSector(16, sector); // read-modify-write a whole sector
    sector[0] = 'E';
    disk.writeSector(16, sector);
    std::printf("disk-style 1-byte update: 1 sector read + 1 sector "
                "write (%u bytes moved)\n",
                2 * RamDisk::sectorBytes);
    store.writeU8(16 * RamDisk::sectorBytes, 'e');
    std::printf("mapped 1-byte update: a single byte store\n");
    std::printf("sector writes so far: %llu\n",
                static_cast<unsigned long long>(disk.sectorWrites()));
    (void)writes_before;

    // Both views stay coherent.
    std::printf("file 0 via sectors now reads: \"%s\"\n",
                readFile(disk, 0).c_str());
    return 0;
}
