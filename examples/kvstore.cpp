/**
 * @file
 * A persistent key-value store in ~100 lines, composed from the
 * library's pieces: the B-tree index for keys, a mapped arena for
 * value storage, and whole-system images for persistence across
 * process runs — the paper's "substantial reductions in code size"
 * claim made concrete (no serialisation layer anywhere).
 *
 *   ./kvstore db.img set color red
 *   ./kvstore db.img set answer 42
 *   ./kvstore db.img get answer
 *   ./kvstore db.img list
 *   ./kvstore db.img stats
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "db/btree.hh"
#include "envy/image.hh"
#include "envy/mapped.hh"

using namespace envy;

namespace {

// Store layout: [0x40: value-heap cursor][0x100: tree region]
// [heapBase: values as {len:2, bytes}].
constexpr Addr cursorAddr = 0x40;
constexpr Addr treeBase = 0x100;
constexpr std::uint64_t treeBytes = 256 * KiB;
constexpr Addr heapBase = treeBase + treeBytes;

std::uint64_t
hashKey(const std::string &key)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h ? h : 1;
}

std::string
readValue(EnvyStore &store, Addr at)
{
    const std::uint16_t len =
        static_cast<std::uint16_t>(store.readU32(at) & 0xFFFF);
    std::string v(len, '\0');
    store.read(at + 4, {reinterpret_cast<std::uint8_t *>(v.data()),
                        v.size()});
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s <image> set <key> <value...>\n"
                     "       %s <image> get <key>\n"
                     "       %s <image> list | stats\n",
                     argv[0], argv[0], argv[0]);
        return 2;
    }
    const std::string path = argv[1];
    const std::string cmd = argv[2];

    // Open the image if it exists, otherwise format a fresh store.
    std::unique_ptr<EnvyStore> store;
    std::unique_ptr<BTree> tree;
    if (std::filesystem::exists(path)) {
        store = EnvyImage::load(path);
        tree = std::make_unique<BTree>(
            BTree::open(*store, treeBase, treeBytes));
    } else {
        EnvyConfig cfg;
        cfg.geom = Geometry::tiny();
        store = std::make_unique<EnvyStore>(cfg);
        tree = std::make_unique<BTree>(*store, treeBase, treeBytes);
        store->writeU64(cursorAddr, heapBase);
    }

    if (cmd == "set" && argc >= 5) {
        std::string value = argv[4];
        for (int i = 5; i < argc; ++i)
            value += std::string(" ") + argv[i];
        const Addr at = store->readU64(cursorAddr);
        store->writeU32(at, static_cast<std::uint32_t>(value.size()));
        store->write(at + 4,
                     {reinterpret_cast<const std::uint8_t *>(
                          value.data()),
                      value.size()});
        store->writeU64(cursorAddr, at + 4 + value.size());
        tree->insert(hashKey(argv[3]), at);
        EnvyImage::save(*store, path);
        std::printf("%s = \"%s\"\n", argv[3], value.c_str());
    } else if (cmd == "get" && argc == 4) {
        const auto at = tree->lookup(hashKey(argv[3]));
        if (!at) {
            std::printf("(not found)\n");
            return 1;
        }
        std::printf("%s\n", readValue(*store, *at).c_str());
    } else if (cmd == "list") {
        tree->scan([&](std::uint64_t key, std::uint64_t at) {
            std::printf("%016llx -> \"%s\"\n",
                        static_cast<unsigned long long>(key),
                        readValue(*store, at).c_str());
        });
    } else if (cmd == "stats") {
        std::printf("keys: %llu, tree height %u, store %llu bytes\n",
                    static_cast<unsigned long long>(tree->size()),
                    tree->height(),
                    static_cast<unsigned long long>(store->size()));
        std::printf("copy-on-writes %llu, cleans %llu, cleaning "
                    "cost %.2f, wear spread %llu\n",
                    static_cast<unsigned long long>(
                        store->controller().statCows.value()),
                    static_cast<unsigned long long>(
                        store->cleanerRef().statCleans.value()),
                    store->cleaningCost(),
                    static_cast<unsigned long long>(
                        store->wearLeveler().spread(store->space())));
    } else {
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        return 2;
    }
    return 0;
}
